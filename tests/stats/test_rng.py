"""Unit tests for repro.stats.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import ensure_rng, spawn


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        out = ensure_rng(seq)
        assert isinstance(out, np.random.Generator)

    def test_numpy_integer_accepted(self):
        out = ensure_rng(np.int64(3))
        assert isinstance(out, np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawn:
    def test_count(self):
        children = spawn(ensure_rng(0), 4)
        assert len(children) == 4

    def test_children_independent_streams(self):
        children = spawn(ensure_rng(0), 2)
        a = children[0].random(10)
        b = children[1].random(10)
        assert not np.array_equal(a, b)

    def test_deterministic_given_parent_seed(self):
        a = [g.random() for g in spawn(ensure_rng(5), 3)]
        b = [g.random() for g in spawn(ensure_rng(5), 3)]
        assert a == b

    def test_zero_children(self):
        assert spawn(ensure_rng(0), 0) == []

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)
