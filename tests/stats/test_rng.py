"""Unit tests for repro.stats.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.stats import ensure_rng, replication_seeds, spawn


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        out = ensure_rng(seq)
        assert isinstance(out, np.random.Generator)

    def test_numpy_integer_accepted(self):
        out = ensure_rng(np.int64(3))
        assert isinstance(out, np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawn:
    def test_count(self):
        children = spawn(ensure_rng(0), 4)
        assert len(children) == 4

    def test_children_independent_streams(self):
        children = spawn(ensure_rng(0), 2)
        a = children[0].random(10)
        b = children[1].random(10)
        assert not np.array_equal(a, b)

    def test_deterministic_given_parent_seed(self):
        a = [g.random() for g in spawn(ensure_rng(5), 3)]
        b = [g.random() for g in spawn(ensure_rng(5), 3)]
        assert a == b

    def test_zero_children(self):
        assert spawn(ensure_rng(0), 0) == []

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)


class TestReplicationSeeds:
    """The shared per-replication seeding protocol (promoted from the
    figure harness in the api PR)."""

    def test_single_replication_is_identity(self):
        # R = 1 must pass the seed through untouched: the replicated
        # path consumes exactly the stream the unreplicated one did.
        assert replication_seeds(7, 1) == [7]
        assert replication_seeds(None, 1) == [None]

    def test_single_replication_preserves_generator_object(self):
        gen = ensure_rng(3)
        assert replication_seeds(gen, 1)[0] is gen

    def test_multi_replication_matches_spawn(self):
        seeds = replication_seeds(5, 3)
        reference = spawn(ensure_rng(5), 3)
        assert len(seeds) == 3
        assert [g.random() for g in seeds] == [
            g.random() for g in reference
        ]

    def test_substreams_differ(self):
        a, b = replication_seeds(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_deterministic_given_seed(self):
        a = [g.random() for g in replication_seeds(11, 4)]
        b = [g.random() for g in replication_seeds(11, 4)]
        assert a == b

    def test_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            replication_seeds(0, 0)
        with pytest.raises(ModelError):
            replication_seeds(0, -2)

    def test_figures_alias_points_here(self):
        from repro.experiments import figures
        from repro.stats.rng import replication_seeds as public

        assert figures._replication_seeds is public
