"""Unit tests for repro.stats.convolution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.stats import (
    Erlang,
    Exponential,
    convolve_cdf,
    convolve_densities,
    convolve_pdf,
    grid_for,
)


class TestGridFor:
    def test_covers_the_mass(self):
        grid = grid_for([Exponential(1.0), Exponential(1.0)])
        assert grid[0] == 0.0
        # Sum has mean 2, std sqrt(2); upper must be far in the tail.
        assert grid[-1] > 2 + 5 * np.sqrt(2)

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            grid_for([])

    def test_rejects_tiny_grid(self):
        with pytest.raises(ModelError):
            grid_for([Exponential(1.0)], grid_points=4)


class TestConvolveDensities:
    def test_two_exponentials_match_hypoexponential(self):
        from repro.stats import Hypoexponential

        grid, pdf = convolve_densities(
            [Exponential(3.0), Exponential(1.0)], grid_points=8192
        )
        expected = np.asarray(Hypoexponential(3.0, 1.0).pdf(grid))
        # Interior agreement (the rectangle rule is weakest at 0).
        inner = grid > 0.2
        np.testing.assert_allclose(pdf[inner], expected[inner], atol=0.02)

    def test_density_normalized(self):
        grid, pdf = convolve_densities([Exponential(2.0)] * 3, grid_points=8192)
        assert np.trapezoid(pdf, grid) == pytest.approx(1.0, abs=1e-6)


class TestConvolveCdfPdf:
    def test_cdf_monotone_and_bounded(self):
        t = np.linspace(0, 10, 100)
        cdf = np.asarray(
            convolve_cdf([Exponential(1.0), Erlang(2, 2.0)], t, grid_points=8192)
        )
        assert np.all(np.diff(cdf) >= -1e-9)
        assert np.all((cdf >= 0) & (cdf <= 1))

    def test_sum_of_erlangs_mean(self):
        comps = [Erlang(2, 2.0), Erlang(3, 1.0)]
        t = np.linspace(0, 60, 2000)
        cdf = np.asarray(convolve_cdf(comps, t, grid_points=16384))
        mean = np.trapezoid(1 - cdf, t)
        assert mean == pytest.approx(1.0 + 3.0, rel=0.02)

    def test_pdf_outside_support(self):
        assert convolve_pdf([Exponential(1.0)], -0.5) == 0.0

    def test_scalar_output(self):
        out = convolve_cdf([Exponential(1.0), Exponential(2.0)], 1.0)
        assert isinstance(out, float)
