"""Unit tests for repro.stats.distributions."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import integrate, stats as sps

from repro.errors import ModelError
from repro.stats import (
    Deterministic,
    Erlang,
    Exponential,
    Hypoexponential,
    MaximumOf,
    SumOf,
    two_phase_latency,
)


class TestExponential:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ModelError):
            Exponential(0.0)
        with pytest.raises(ModelError):
            Exponential(-1.5)
        with pytest.raises(ModelError):
            Exponential(float("nan"))

    def test_pdf_matches_scipy(self):
        d = Exponential(2.5)
        t = np.linspace(0, 5, 50)
        np.testing.assert_allclose(d.pdf(t), sps.expon.pdf(t, scale=1 / 2.5))

    def test_cdf_matches_scipy(self):
        d = Exponential(0.7)
        t = np.linspace(0, 10, 50)
        np.testing.assert_allclose(d.cdf(t), sps.expon.cdf(t, scale=1 / 0.7))

    def test_sf_complement(self):
        d = Exponential(1.3)
        t = np.linspace(0, 8, 20)
        np.testing.assert_allclose(d.sf(t), 1.0 - np.asarray(d.cdf(t)))

    def test_negative_time_handling(self):
        d = Exponential(1.0)
        assert d.pdf(-1.0) == 0.0
        assert d.cdf(-1.0) == 0.0
        assert d.sf(-1.0) == 1.0

    def test_mean_and_var(self):
        d = Exponential(4.0)
        assert d.mean() == pytest.approx(0.25)
        assert d.var() == pytest.approx(0.0625)

    def test_quantile_roundtrip(self):
        d = Exponential(2.0)
        for q in (0.1, 0.5, 0.9):
            assert d.cdf(d.quantile(q)) == pytest.approx(q)

    def test_quantile_rejects_bad_levels(self):
        d = Exponential(2.0)
        with pytest.raises(ModelError):
            d.quantile(1.0)
        with pytest.raises(ModelError):
            d.quantile(-0.1)

    def test_sample_mean_converges(self, rng):
        d = Exponential(3.0)
        draws = d.sample(rng, size=200_000)
        assert draws.mean() == pytest.approx(1 / 3.0, rel=0.02)

    def test_scalar_output_for_scalar_input(self):
        d = Exponential(1.0)
        assert isinstance(d.pdf(1.0), float)
        assert isinstance(d.cdf(1.0), float)


class TestErlang:
    def test_rejects_bad_shape(self):
        with pytest.raises(ModelError):
            Erlang(0, 1.0)
        with pytest.raises(ModelError):
            Erlang(-2, 1.0)
        with pytest.raises(ModelError):
            Erlang(1.5, 1.0)

    def test_shape_one_is_exponential(self):
        e = Erlang(1, 2.0)
        x = Exponential(2.0)
        t = np.linspace(0.01, 5, 30)
        np.testing.assert_allclose(e.pdf(t), x.pdf(t), rtol=1e-12)
        np.testing.assert_allclose(e.cdf(t), x.cdf(t), rtol=1e-10)

    @pytest.mark.parametrize("k,lam", [(2, 1.0), (3, 2.5), (7, 0.4)])
    def test_matches_scipy_gamma(self, k, lam):
        d = Erlang(k, lam)
        t = np.linspace(0.01, 20, 60)
        np.testing.assert_allclose(
            d.pdf(t), sps.gamma.pdf(t, a=k, scale=1 / lam), rtol=1e-9
        )
        np.testing.assert_allclose(
            d.cdf(t), sps.gamma.cdf(t, a=k, scale=1 / lam), rtol=1e-8, atol=1e-12
        )

    def test_mean_var(self):
        d = Erlang(5, 2.0)
        assert d.mean() == pytest.approx(2.5)
        assert d.var() == pytest.approx(1.25)

    def test_pdf_at_zero(self):
        assert Erlang(1, 3.0).pdf(0.0) == pytest.approx(3.0)
        assert Erlang(2, 3.0).pdf(0.0) == 0.0

    def test_pdf_integrates_to_one(self):
        d = Erlang(4, 1.5)
        total, _ = integrate.quad(lambda t: d.pdf(t), 0, np.inf)
        assert total == pytest.approx(1.0, abs=1e-8)

    def test_sample_moments(self, rng):
        d = Erlang(3, 2.0)
        draws = d.sample(rng, size=200_000)
        assert draws.mean() == pytest.approx(1.5, rel=0.02)
        assert draws.var() == pytest.approx(0.75, rel=0.05)

    def test_erlang_is_sum_of_exponentials(self, rng):
        # Lemma 3: k sequential Exp(λ) repetitions ~ Erlang(k, λ)
        lam, k, n = 1.7, 4, 100_000
        sums = rng.exponential(1 / lam, size=(n, k)).sum(axis=1)
        d = Erlang(k, lam)
        # Kolmogorov-Smirnov style check on a few quantiles
        for q in (0.25, 0.5, 0.75, 0.9):
            emp = np.quantile(sums, q)
            assert d.cdf(emp) == pytest.approx(q, abs=0.01)


class TestHypoexponential:
    def test_rejects_equal_rates(self):
        with pytest.raises(ModelError):
            Hypoexponential(2.0, 2.0)

    def test_pdf_is_paper_formula(self):
        a, b = 3.0, 1.0
        d = Hypoexponential(a, b)
        t = np.linspace(0.01, 10, 40)
        expected = a * b / (a - b) * (np.exp(-b * t) - np.exp(-a * t))
        np.testing.assert_allclose(d.pdf(t), expected, rtol=1e-12)

    def test_pdf_symmetric_in_rates(self):
        # L_o + L_p is symmetric in the two rates
        t = np.linspace(0.01, 10, 40)
        np.testing.assert_allclose(
            Hypoexponential(3.0, 1.0).pdf(t),
            Hypoexponential(1.0, 3.0).pdf(t),
            rtol=1e-12,
        )

    def test_pdf_integrates_to_one(self):
        d = Hypoexponential(2.0, 0.5)
        total, _ = integrate.quad(lambda t: d.pdf(t), 0, np.inf)
        assert total == pytest.approx(1.0, abs=1e-8)

    def test_cdf_is_pdf_integral(self):
        d = Hypoexponential(2.5, 0.8)
        for t0 in (0.5, 1.0, 3.0):
            val, _ = integrate.quad(lambda t: d.pdf(t), 0, t0)
            assert d.cdf(t0) == pytest.approx(val, abs=1e-8)

    def test_mean_is_sum_of_phase_means(self):
        d = Hypoexponential(4.0, 0.5)
        assert d.mean() == pytest.approx(1 / 4.0 + 1 / 0.5)

    def test_sample_mean(self, rng):
        d = Hypoexponential(3.0, 1.0)
        draws = d.sample(rng, size=100_000)
        assert draws.mean() == pytest.approx(d.mean(), rel=0.02)


class TestTwoPhaseLatency:
    def test_distinct_rates_gives_hypoexponential(self):
        d = two_phase_latency(2.0, 1.0)
        assert isinstance(d, Hypoexponential)

    def test_equal_rates_gives_erlang2(self):
        d = two_phase_latency(2.0, 2.0)
        assert isinstance(d, Erlang)
        assert d.shape == 2
        assert d.rate == 2.0

    def test_near_equal_rates_degrade_gracefully(self):
        d = two_phase_latency(2.0, 2.0 * (1 + 1e-12))
        assert isinstance(d, Erlang)

    def test_continuity_at_the_limit(self):
        # Hypoexp(λ, λ+ε) must approach Erlang(2, λ) as ε → 0
        lam = 1.5
        erl = Erlang(2, lam)
        hypo = two_phase_latency(lam, lam * 1.01)
        t = np.linspace(0.1, 6, 25)
        np.testing.assert_allclose(hypo.pdf(t), erl.pdf(t), rtol=0.05)


class TestDeterministic:
    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            Deterministic(-1.0)

    def test_cdf_step(self):
        d = Deterministic(2.0)
        assert d.cdf(1.99) == 0.0
        assert d.cdf(2.0) == 1.0
        assert d.mean() == 2.0
        assert d.var() == 0.0

    def test_sample(self, rng):
        d = Deterministic(3.5)
        assert d.sample(rng) == 3.5
        assert np.all(d.sample(rng, size=5) == 3.5)


class TestMaximumOf:
    def test_requires_components(self):
        with pytest.raises(ModelError):
            MaximumOf([])

    def test_cdf_is_product(self):
        a, b = Exponential(1.0), Exponential(2.0)
        m = MaximumOf([a, b])
        t = np.linspace(0, 5, 20)
        np.testing.assert_allclose(
            m.cdf(t), np.asarray(a.cdf(t)) * np.asarray(b.cdf(t))
        )

    def test_mean_two_exponentials_closed_form(self):
        # E[max] = 1/a + 1/b − 1/(a+b) (Lemma 1's expression)
        a, b = 2.0, 3.0
        m = MaximumOf([Exponential(a), Exponential(b)])
        assert m.mean() == pytest.approx(1 / a + 1 / b - 1 / (a + b), rel=1e-6)

    def test_sample_max(self, rng):
        m = MaximumOf([Exponential(1.0), Exponential(1.0)])
        draws = m.sample(rng, size=100_000)
        assert np.mean(draws) == pytest.approx(1.5, rel=0.02)


class TestSumOf:
    def test_requires_components(self):
        with pytest.raises(ModelError):
            SumOf([])

    def test_mean_var_additive(self):
        s = SumOf([Exponential(1.0), Erlang(2, 2.0), Deterministic(0.5)])
        assert s.mean() == pytest.approx(1.0 + 1.0 + 0.5)
        assert s.var() == pytest.approx(1.0 + 0.5 + 0.0)

    def test_two_exponentials_match_hypoexponential(self):
        s = SumOf([Exponential(3.0), Exponential(1.0)])
        h = Hypoexponential(3.0, 1.0)
        for t in (0.5, 1.0, 2.0, 4.0):
            assert s.cdf(t) == pytest.approx(h.cdf(t), abs=0.02)

    def test_sample(self, rng):
        s = SumOf([Exponential(2.0), Exponential(2.0)])
        draws = s.sample(rng, size=100_000)
        assert draws.mean() == pytest.approx(1.0, rel=0.02)
