"""Protocol-compliance tests: every distribution honors the interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    Hypoexponential,
    MaximumOf,
    SumOf,
)

ALL_DISTRIBUTIONS = [
    Exponential(1.5),
    Erlang(3, 2.0),
    Hypoexponential(3.0, 1.0),
    Deterministic(2.0),
    MaximumOf([Exponential(1.0), Erlang(2, 2.0)]),
    SumOf([Exponential(1.0), Exponential(2.0)]),
]


@pytest.mark.parametrize(
    "dist", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__
)
class TestDistributionProtocol:
    def test_satisfies_protocol(self, dist):
        assert isinstance(dist, Distribution)

    def test_cdf_bounds_and_monotone(self, dist):
        t = np.linspace(0.0, 20.0, 200)
        cdf = np.asarray(dist.cdf(t))
        assert np.all(cdf >= -1e-9)
        assert np.all(cdf <= 1.0 + 1e-9)
        assert np.all(np.diff(cdf) >= -1e-6)

    def test_sf_complement(self, dist):
        for t in (0.5, 1.0, 3.0, 10.0):
            assert float(dist.cdf(t)) + float(dist.sf(t)) == pytest.approx(
                1.0, abs=1e-6
            )

    def test_mean_positive(self, dist):
        assert dist.mean() > 0

    def test_sampling_matches_mean(self, dist, rng):
        draws = np.asarray(dist.sample(rng, size=60_000))
        assert draws.shape == (60_000,)
        assert float(np.mean(draws)) == pytest.approx(dist.mean(), rel=0.05)

    def test_samples_nonnegative(self, dist, rng):
        draws = np.asarray(dist.sample(rng, size=1000))
        assert np.all(draws >= 0)

    def test_cdf_consistent_with_samples(self, dist, rng):
        if isinstance(dist, Deterministic):
            pytest.skip("a point mass has no interior quantiles")
        draws = np.asarray(dist.sample(rng, size=60_000))
        for q in (0.25, 0.75):
            t_q = float(np.quantile(draws, q))
            assert float(dist.cdf(t_q)) == pytest.approx(q, abs=0.02)
