"""Unit tests for repro.stats.phase_type (uniformization cdf)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.stats import (
    Erlang,
    Exponential,
    Hypoexponential,
    hypoexponential_cdf,
    hypoexponential_mean,
    hypoexponential_sf,
)


class TestHypoexponentialCdf:
    def test_single_phase_is_exponential(self):
        t = np.linspace(0, 8, 30)
        np.testing.assert_allclose(
            hypoexponential_cdf([2.0], t),
            np.asarray(Exponential(2.0).cdf(t)),
            atol=1e-10,
        )

    def test_equal_rates_are_erlang(self):
        t = np.linspace(0, 15, 40)
        np.testing.assert_allclose(
            hypoexponential_cdf([1.5] * 4, t),
            np.asarray(Erlang(4, 1.5).cdf(t)),
            atol=1e-10,
        )

    def test_two_distinct_rates_match_closed_form(self):
        t = np.linspace(0, 10, 40)
        np.testing.assert_allclose(
            hypoexponential_cdf([3.0, 1.0], t),
            np.asarray(Hypoexponential(3.0, 1.0).cdf(t)),
            atol=1e-10,
        )

    def test_mixed_multiplicities_mean(self):
        # E from the cdf must equal Σ 1/rate
        rates = [6.0] * 5 + [2.0] * 5
        grid = np.linspace(0, 60, 6000)
        sf = hypoexponential_sf(rates, grid)
        mean = float(np.trapezoid(sf, grid))
        assert mean == pytest.approx(hypoexponential_mean(rates), rel=1e-4)

    def test_order_invariance(self):
        t = np.linspace(0, 10, 25)
        a = hypoexponential_cdf([1.0, 3.0, 2.0], t)
        b = hypoexponential_cdf([3.0, 2.0, 1.0], t)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_monotone_nondecreasing(self):
        t = np.linspace(0, 30, 500)
        cdf = np.asarray(hypoexponential_cdf([0.5, 2.0, 1.0, 1.0], t))
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_bounds(self):
        t = np.linspace(0, 100, 200)
        cdf = np.asarray(hypoexponential_cdf([1.0, 2.0], t))
        assert np.all(cdf >= 0.0)
        assert np.all(cdf <= 1.0)
        assert cdf[-1] == pytest.approx(1.0, abs=1e-8)

    def test_negative_and_zero_time(self):
        assert hypoexponential_sf([1.0, 2.0], -1.0) == 1.0
        assert hypoexponential_cdf([1.0, 2.0], 0.0) == 0.0

    def test_scalar_in_scalar_out(self):
        out = hypoexponential_cdf([1.0, 2.0], 1.5)
        assert isinstance(out, float)

    def test_monte_carlo_agreement(self, rng):
        rates = [4.0, 4.0, 1.0, 0.7]
        draws = sum(rng.exponential(1 / r, size=200_000) for r in rates)
        for q in (0.25, 0.5, 0.9):
            t_q = float(np.quantile(draws, q))
            assert hypoexponential_cdf(rates, t_q) == pytest.approx(q, abs=0.01)

    def test_widely_separated_rates(self):
        # Stiff case: rates spanning 4 orders of magnitude.
        rates = [1000.0, 0.1]
        grid = np.linspace(0, 120, 4000)
        sf = hypoexponential_sf(rates, grid)
        mean = float(np.trapezoid(sf, grid))
        assert mean == pytest.approx(1 / 1000.0 + 1 / 0.1, rel=1e-3)

    def test_input_validation(self):
        with pytest.raises(ModelError):
            hypoexponential_cdf([], 1.0)
        with pytest.raises(ModelError):
            hypoexponential_cdf([1.0, -2.0], 1.0)
        with pytest.raises(ModelError):
            hypoexponential_mean([0.0])
