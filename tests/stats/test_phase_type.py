"""Unit tests for repro.stats.phase_type (uniformization cdf)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.stats import (
    Erlang,
    Exponential,
    Hypoexponential,
    hypoexponential_cdf,
    hypoexponential_mean,
    hypoexponential_sf,
)
from repro.stats.phase_type import (
    WeightLadder,
    _sf_from_ladder,
    _sf_rows_at,
    batch_weight_ladders,
)


class TestHypoexponentialCdf:
    def test_single_phase_is_exponential(self):
        t = np.linspace(0, 8, 30)
        np.testing.assert_allclose(
            hypoexponential_cdf([2.0], t),
            np.asarray(Exponential(2.0).cdf(t)),
            atol=1e-10,
        )

    def test_equal_rates_are_erlang(self):
        t = np.linspace(0, 15, 40)
        np.testing.assert_allclose(
            hypoexponential_cdf([1.5] * 4, t),
            np.asarray(Erlang(4, 1.5).cdf(t)),
            atol=1e-10,
        )

    def test_two_distinct_rates_match_closed_form(self):
        t = np.linspace(0, 10, 40)
        np.testing.assert_allclose(
            hypoexponential_cdf([3.0, 1.0], t),
            np.asarray(Hypoexponential(3.0, 1.0).cdf(t)),
            atol=1e-10,
        )

    def test_mixed_multiplicities_mean(self):
        # E from the cdf must equal Σ 1/rate
        rates = [6.0] * 5 + [2.0] * 5
        grid = np.linspace(0, 60, 6000)
        sf = hypoexponential_sf(rates, grid)
        mean = float(np.trapezoid(sf, grid))
        assert mean == pytest.approx(hypoexponential_mean(rates), rel=1e-4)

    def test_order_invariance(self):
        t = np.linspace(0, 10, 25)
        a = hypoexponential_cdf([1.0, 3.0, 2.0], t)
        b = hypoexponential_cdf([3.0, 2.0, 1.0], t)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_monotone_nondecreasing(self):
        t = np.linspace(0, 30, 500)
        cdf = np.asarray(hypoexponential_cdf([0.5, 2.0, 1.0, 1.0], t))
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_bounds(self):
        t = np.linspace(0, 100, 200)
        cdf = np.asarray(hypoexponential_cdf([1.0, 2.0], t))
        assert np.all(cdf >= 0.0)
        assert np.all(cdf <= 1.0)
        assert cdf[-1] == pytest.approx(1.0, abs=1e-8)

    def test_negative_and_zero_time(self):
        assert hypoexponential_sf([1.0, 2.0], -1.0) == 1.0
        assert hypoexponential_cdf([1.0, 2.0], 0.0) == 0.0

    def test_scalar_in_scalar_out(self):
        out = hypoexponential_cdf([1.0, 2.0], 1.5)
        assert isinstance(out, float)

    def test_monte_carlo_agreement(self, rng):
        rates = [4.0, 4.0, 1.0, 0.7]
        draws = sum(rng.exponential(1 / r, size=200_000) for r in rates)
        for q in (0.25, 0.5, 0.9):
            t_q = float(np.quantile(draws, q))
            assert hypoexponential_cdf(rates, t_q) == pytest.approx(q, abs=0.01)

    def test_widely_separated_rates(self):
        # Stiff case: rates spanning 4 orders of magnitude.
        rates = [1000.0, 0.1]
        grid = np.linspace(0, 120, 4000)
        sf = hypoexponential_sf(rates, grid)
        mean = float(np.trapezoid(sf, grid))
        assert mean == pytest.approx(1 / 1000.0 + 1 / 0.1, rel=1e-3)

    def test_input_validation(self):
        with pytest.raises(ModelError):
            hypoexponential_cdf([], 1.0)
        with pytest.raises(ModelError):
            hypoexponential_cdf([1.0, -2.0], 1.0)
        with pytest.raises(ModelError):
            hypoexponential_mean([0.0])


class TestTolTruncation:
    """The tol parameter must actually steer the truncation bounds."""

    RATES = [1.0, 2.0, 3.0]
    T = 5.0

    def _terms_for(self, tol) -> tuple[int, float]:
        ladder = WeightLadder(self.RATES)
        value = float(
            _sf_from_ladder(ladder, np.array([self.T]), tol=tol)[0]
        )
        return ladder.n_computed, value

    def test_looser_tol_truncates_earlier(self):
        loose, v_loose = self._terms_for(1e-4)
        default, v_default = self._terms_for(1e-12)
        tight, v_tight = self._terms_for(1e-30)
        assert loose < default < tight
        # Looser truncation still lands within its own tolerance.
        assert v_loose == pytest.approx(v_default, abs=1e-4)
        assert v_tight == pytest.approx(v_default, abs=1e-12)

    def test_default_tol_is_bit_identical_to_implicit(self):
        implicit = hypoexponential_sf(self.RATES, self.T)
        explicit = hypoexponential_sf(self.RATES, self.T, tol=1e-12)
        assert implicit == explicit

    def test_tol_threads_through_cdf(self):
        loose = hypoexponential_cdf(self.RATES, self.T, tol=1e-3)
        default = hypoexponential_cdf(self.RATES, self.T)
        assert loose == pytest.approx(default, abs=1e-3)

    def test_tol_validation(self):
        for bad in (0.0, -1e-3, 1.0, 2.0):
            with pytest.raises(ModelError):
                hypoexponential_sf(self.RATES, self.T, tol=bad)


class TestBatchWeightLadders:
    """The lock-step batch recurrence must be bitwise the scalar ladder."""

    def test_bitwise_identical_to_scalar(self):
        rows = [tuple([0.5 + 0.3 * p] * 3 + [2.0] * 3) for p in range(12)]
        n_terms = 200
        ladders = batch_weight_ladders(rows, n_terms)
        for row, ladder in zip(rows, ladders):
            reference = WeightLadder(row)
            assert np.array_equal(ladder.get(n_terms), reference.get(n_terms))
            assert np.array_equal(ladder._v, reference._v)

    def test_mixed_phase_counts_are_padded_exactly(self):
        rows = [
            (1.0, 2.0),
            (0.7, 0.7, 3.0, 3.0, 3.0),
            (2.5,),
            (4.0, 0.2, 1.1),
        ]
        n_terms = 150
        ladders = batch_weight_ladders(rows, n_terms)
        for row, ladder in zip(rows, ladders):
            reference = WeightLadder(row)
            assert np.array_equal(ladder.get(n_terms), reference.get(n_terms))
            assert np.array_equal(ladder._v, reference._v)

    def test_extension_continues_the_series(self):
        rows = [(1.0, 3.0), (2.0, 2.0)]
        ladders = batch_weight_ladders(rows, 50)
        for row, ladder in zip(rows, ladders):
            assert np.array_equal(
                ladder.get(120), WeightLadder(row).get(120)
            )

    def test_empty_and_zero_terms(self):
        assert batch_weight_ladders([], 10) == []
        (ladder,) = batch_weight_ladders([(1.0, 2.0)], 0)
        assert ladder.n_computed == 0
        assert np.array_equal(ladder.get(30), WeightLadder((1.0, 2.0)).get(30))

    def test_rejects_negative_terms(self):
        with pytest.raises(ModelError):
            batch_weight_ladders([(1.0,)], -1)


class TestSfRowsAt:
    """The padded-window scalar-t batch must match per-row evaluation."""

    def test_rows_bitwise_match_single_calls(self):
        rows = [
            (1.0, 2.0, 2.0),
            (5.0, 0.4, 0.4),
            (2.2, 2.2, 2.2),
            (0.9,),
        ]
        for t in (0.0, 0.3, 2.0, 9.0):
            ladders = [WeightLadder(row) for row in rows]
            batch = _sf_rows_at(ladders, t)
            for row, value in zip(rows, batch):
                single = float(
                    _sf_from_ladder(WeightLadder(row), np.array([t]))[0]
                )
                assert value == single

    def test_negative_t_is_all_ones(self):
        ladders = [WeightLadder((1.0, 2.0)), WeightLadder((3.0,))]
        assert np.array_equal(_sf_rows_at(ladders, -1.0), np.ones(2))
