"""Property-based tests (hypothesis) for the probability substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    Erlang,
    Exponential,
    expected_max_erlang_iid,
    expected_max_exponential,
    expected_max_exponential_iid,
    expected_min_exponential,
    harmonic_number,
    hypoexponential_cdf,
    hypoexponential_mean,
    hypoexponential_sf,
    two_phase_latency,
)

rates = st.floats(min_value=0.05, max_value=50.0, allow_nan=False)
small_n = st.integers(min_value=1, max_value=30)
shapes = st.integers(min_value=1, max_value=8)
times = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestDistributionInvariants:
    @given(rate=rates, t=times)
    def test_exponential_cdf_sf_complement(self, rate, t):
        d = Exponential(rate)
        assert d.cdf(t) + d.sf(t) == pytest.approx(1.0, abs=1e-12)

    @given(rate=rates, t=times)
    def test_exponential_cdf_in_unit_interval(self, rate, t):
        d = Exponential(rate)
        assert 0.0 <= d.cdf(t) <= 1.0

    @given(rate=rates, k=shapes, t=times)
    def test_erlang_cdf_bounds(self, rate, k, t):
        d = Erlang(k, rate)
        assert 0.0 <= d.cdf(t) <= 1.0

    @given(rate=rates, k=shapes)
    def test_erlang_mean_var_identities(self, rate, k):
        d = Erlang(k, rate)
        assert d.mean() == pytest.approx(k / rate)
        assert d.var() == pytest.approx(k / rate**2)

    @given(a=rates, b=rates)
    def test_two_phase_mean_additive(self, a, b):
        d = two_phase_latency(a, b)
        assert d.mean() == pytest.approx(1 / a + 1 / b, rel=1e-9)

    @given(rate=rates, k=shapes, t1=times, t2=times)
    def test_erlang_cdf_monotone(self, rate, k, t1, t2):
        lo, hi = sorted((t1, t2))
        d = Erlang(k, rate)
        assert d.cdf(lo) <= d.cdf(hi) + 1e-12


class TestOrderStatisticsInvariants:
    @given(n=small_n)
    def test_harmonic_positive_increasing(self, n):
        assert harmonic_number(n) > harmonic_number(n - 1)

    @given(n=small_n, rate=rates)
    def test_max_at_least_single_mean(self, n, rate):
        assert expected_max_exponential_iid(n, rate) >= 1 / rate - 1e-12

    @given(
        rs=st.lists(rates, min_size=1, max_size=8),
    )
    def test_max_ge_min(self, rs):
        assert (
            expected_max_exponential(rs)
            >= expected_min_exponential(rs) - 1e-12
        )

    @given(rs=st.lists(rates, min_size=2, max_size=6))
    def test_max_min_sum_bound(self, rs):
        # E[max] <= Σ E[X_i]; E[min] <= min E[X_i]
        assert expected_max_exponential(rs) <= sum(1 / r for r in rs) + 1e-9
        assert expected_min_exponential(rs) <= min(1 / r for r in rs) + 1e-9

    @given(n=small_n, k=shapes, rate=rates)
    @settings(max_examples=30, deadline=None)
    def test_erlang_max_scaling_law(self, n, k, rate):
        # E[max of Erl(k, λ)] = E[max of Erl(k, 1)] / λ
        base = expected_max_erlang_iid(n, k, 1.0)
        assert expected_max_erlang_iid(n, k, rate) == pytest.approx(
            base / rate, rel=1e-6
        )

    @given(n=small_n, k=shapes, rate=rates)
    @settings(max_examples=30, deadline=None)
    def test_erlang_max_at_least_mean(self, n, k, rate):
        assert expected_max_erlang_iid(n, k, rate) >= k / rate - 1e-9


class TestPhaseTypeInvariants:
    @given(
        rs=st.lists(rates, min_size=1, max_size=6),
        t=times,
    )
    @settings(max_examples=50, deadline=None)
    def test_cdf_sf_complement(self, rs, t):
        assert hypoexponential_cdf(rs, t) + hypoexponential_sf(
            rs, t
        ) == pytest.approx(1.0, abs=1e-9)

    @given(rs=st.lists(rates, min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_mean_from_survival_integral(self, rs):
        mean = hypoexponential_mean(rs)
        grid = np.linspace(0, mean * 30 + 10, 4000)
        integral = float(np.trapezoid(hypoexponential_sf(rs, grid), grid))
        assert integral == pytest.approx(mean, rel=0.02)

    @given(rs=st.lists(rates, min_size=1, max_size=5), t1=times, t2=times)
    @settings(max_examples=50, deadline=None)
    def test_cdf_monotone(self, rs, t1, t2):
        lo, hi = sorted((t1, t2))
        assert hypoexponential_cdf(rs, lo) <= hypoexponential_cdf(rs, hi) + 1e-9

    @given(rs=st.lists(rates, min_size=2, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_permutation_invariance(self, rs):
        t = sum(1 / r for r in rs)  # evaluate at the mean
        forward = hypoexponential_cdf(rs, t)
        backward = hypoexponential_cdf(list(reversed(rs)), t)
        assert forward == pytest.approx(backward, abs=1e-9)
