"""Property-based tests for crowd-DB aggregation and operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowddb import (
    CrowdFilter,
    CrowdSort,
    aggregate_numeric,
    majority_confidence,
    majority_vote,
)
from repro.market import TaskType


class TestMajorityVoteProperties:
    @given(votes=st.lists(st.booleans(), min_size=1, max_size=25))
    def test_majority_is_most_frequent(self, votes):
        winner = majority_vote(votes)
        counts = {True: votes.count(True), False: votes.count(False)}
        assert counts[winner] == max(counts.values())

    @given(votes=st.lists(st.booleans(), min_size=1, max_size=25))
    def test_permutation_invariant(self, votes):
        shuffled = list(reversed(votes))
        assert majority_vote(votes) == majority_vote(shuffled)

    @given(
        votes=st.lists(st.booleans(), min_size=1, max_size=15),
        accuracy=st.floats(min_value=0.55, max_value=0.99),
    )
    def test_confidence_in_unit_interval(self, votes, accuracy):
        conf = majority_confidence(votes, accuracy)
        assert 0.0 <= conf <= 1.0

    @given(
        n=st.integers(min_value=1, max_value=12),
        accuracy=st.floats(min_value=0.55, max_value=0.99),
    )
    def test_unanimous_confidence_ge_half(self, n, accuracy):
        conf = majority_confidence([True] * n, accuracy)
        assert conf >= 0.5


class TestAggregateNumericProperties:
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        trim=st.floats(min_value=0.0, max_value=0.45),
    )
    def test_within_range(self, values, trim):
        result = aggregate_numeric(values, trim=trim)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9

    @given(
        value=st.floats(min_value=-100, max_value=100, allow_nan=False),
        n=st.integers(min_value=1, max_value=10),
    )
    def test_constant_input(self, value, n):
        assert aggregate_numeric([value] * n) == pytest.approx(value)


class TestOperatorProperties:
    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=2,
            max_size=8,
            unique=True,
        ),
        strategy=st.sampled_from(["all_pairs", "next_votes"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_perfect_crowd_sorts_exactly(self, keys, strategy):
        vote = TaskType("vote", processing_rate=1.0)
        op = CrowdSort(
            items=list(range(len(keys))),
            keys=[float(k) for k in keys],
            task_type=vote,
            strategy=strategy,
        )
        rng = np.random.default_rng(0)
        answers = {
            i: [q.question.sample_answer(rng, 1.0) for _ in range(q.repetitions)]
            for i, q in enumerate(op.plan())
        }
        assert op.collect(answers) == op.ground_truth()

    @given(truths=st.lists(st.booleans(), min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_perfect_crowd_filters_exactly(self, truths):
        vote = TaskType("vote", processing_rate=1.0)
        op = CrowdFilter(
            items=list(range(len(truths))), truths=truths, task_type=vote
        )
        rng = np.random.default_rng(0)
        answers = {
            i: [q.question.sample_answer(rng, 1.0) for _ in range(q.repetitions)]
            for i, q in enumerate(op.plan())
        }
        assert op.collect(answers) == op.ground_truth()
