"""Property-based tests for the market simulators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.market import (
    AgentSimulator,
    AggregateSimulator,
    AtomicTaskOrder,
    LinearPricing,
    MarketModel,
    TaskType,
    TraceRecorder,
    WorkerPool,
)

prices = st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=4)
proc_rates = st.floats(min_value=0.5, max_value=10.0)
seeds = st.integers(min_value=0, max_value=2**31)


@st.composite
def job_orders(draw):
    n_tasks = draw(st.integers(min_value=1, max_value=5))
    orders = []
    for i in range(n_tasks):
        task_type = TaskType(
            f"type{i % 2}", processing_rate=draw(proc_rates)
        )
        orders.append(
            AtomicTaskOrder(
                task_type=task_type,
                prices=tuple(draw(prices)),
                atomic_task_id=i,
            )
        )
    return orders


class TestAggregateSimulatorInvariants:
    @given(orders=job_orders(), seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_timestamps_consistent(self, orders, seed):
        sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=seed)
        recorder = TraceRecorder()
        result = sim.run_job(orders, recorder=recorder)
        for record in recorder.records:
            assert record.published_at <= record.accepted_at <= record.completed_at
        assert result.makespan >= 0

    @given(orders=job_orders(), seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_total_paid_is_sum_of_prices(self, orders, seed):
        sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=seed)
        result = sim.run_job(orders)
        assert result.total_paid == sum(sum(o.prices) for o in orders)

    @given(orders=job_orders(), seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_makespan_is_max_atomic_completion(self, orders, seed):
        sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=seed)
        result = sim.run_job(orders)
        assert result.makespan == pytest.approx(
            max(result.per_atomic_completion.values())
        )

    @given(orders=job_orders(), seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_one_record_per_repetition(self, orders, seed):
        sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=seed)
        recorder = TraceRecorder()
        sim.run_job(orders, recorder=recorder)
        assert len(recorder.records) == sum(o.repetitions for o in orders)

    @given(orders=job_orders(), seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_answers_per_repetition(self, orders, seed):
        sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=seed)
        result = sim.run_job(orders)
        for order in orders:
            assert len(result.answers[order.atomic_task_id]) == order.repetitions


class TestAgentSimulatorInvariants:
    @given(orders=job_orders(), seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_lifecycle_consistency(self, orders, seed):
        sim = AgentSimulator(WorkerPool(arrival_rate=20.0), seed=seed)
        recorder = TraceRecorder(keep_events=True)
        result = sim.run_job(orders, recorder=recorder)
        for record in recorder.records:
            assert record.published_at <= record.accepted_at <= record.completed_at
        assert result.total_paid == sum(sum(o.prices) for o in orders)

    @given(orders=job_orders(), seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_sequential_repetitions_ordering(self, orders, seed):
        sim = AgentSimulator(WorkerPool(arrival_rate=20.0), seed=seed)
        recorder = TraceRecorder()
        sim.run_job(orders, recorder=recorder)
        by_atomic: dict[int, list] = {}
        for record in recorder.records:
            by_atomic.setdefault(record.atomic_task_id, []).append(record)
        for records in by_atomic.values():
            records.sort(key=lambda r: r.repetition_index)
            for prev, nxt in zip(records, records[1:]):
                assert nxt.published_at >= prev.completed_at - 1e-9
