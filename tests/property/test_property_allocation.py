"""Property-based tests for allocation strategies.

Invariants every strategy must satisfy on every feasible instance:

* covers exactly the problem's tasks with the right repetition counts;
* never exceeds the budget; never pays below 1 unit per repetition;
* optimal strategies produce group-uniform prices.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import HTuningProblem, TaskSpec
from repro.core import STRATEGIES
from repro.market import LinearPricing


@st.composite
def h_tuning_problems(draw):
    """Random feasible instances spanning all three scenarios."""
    n_groups = draw(st.integers(min_value=1, max_value=3))
    tasks = []
    tid = 0
    for g in range(n_groups):
        reps = draw(st.integers(min_value=1, max_value=5))
        count = draw(st.integers(min_value=1, max_value=6))
        slope = draw(st.floats(min_value=0.1, max_value=5.0))
        intercept = draw(st.floats(min_value=0.1, max_value=5.0))
        proc = draw(st.floats(min_value=0.2, max_value=5.0))
        pricing = LinearPricing(slope, intercept)
        for _ in range(count):
            tasks.append(
                TaskSpec(tid, reps, pricing, proc, type_name=f"g{g}")
            )
            tid += 1
    min_budget = sum(t.repetitions for t in tasks)
    budget = draw(
        st.integers(min_value=min_budget, max_value=min_budget * 12)
    )
    return HTuningProblem(tasks, budget)


ALL_STRATEGIES = sorted(STRATEGIES)
OPTIMAL_STRATEGIES = ["ra", "ha"]


class TestAllocationInvariants:
    @given(problem=h_tuning_problems(), name=st.sampled_from(ALL_STRATEGIES))
    @settings(max_examples=120, deadline=None)
    def test_strategy_produces_valid_allocation(self, problem, name):
        allocation = STRATEGIES[name](problem, np.random.default_rng(0))
        problem.validate_allocation(allocation)  # raises on violation

    @given(problem=h_tuning_problems(), name=st.sampled_from(ALL_STRATEGIES))
    @settings(max_examples=80, deadline=None)
    def test_minimum_price_respected(self, problem, name):
        allocation = STRATEGIES[name](problem, np.random.default_rng(0))
        for task in problem.tasks:
            assert all(p >= 1 for p in allocation[task.task_id])

    @given(problem=h_tuning_problems(), name=st.sampled_from(OPTIMAL_STRATEGIES))
    @settings(max_examples=60, deadline=None)
    def test_optimal_strategies_group_uniform(self, problem, name):
        allocation = STRATEGIES[name](problem, np.random.default_rng(0))
        for group in problem.groups():
            assert allocation.uniform_group_price(group) is not None

    @given(problem=h_tuning_problems())
    @settings(max_examples=60, deadline=None)
    def test_ra_never_worse_than_rep_even_on_surrogate(self, problem):
        from repro.core import (
            repetition_algorithm,
            surrogate_onhold_objective,
            uniform_price_heuristic,
        )

        ra = repetition_algorithm(problem, strict_scenario=False)
        ra_prices = {
            g.key: ra.uniform_group_price(g) for g in problem.groups()
        }
        uni = uniform_price_heuristic(problem)
        uni_prices = {
            g.key: uni.uniform_group_price(g) for g in problem.groups()
        }
        assert surrogate_onhold_objective(
            problem, ra_prices
        ) <= surrogate_onhold_objective(problem, uni_prices) + 1e-9

    @given(problem=h_tuning_problems())
    @settings(max_examples=40, deadline=None)
    def test_budget_leftover_below_cheapest_increment(self, problem):
        """RA must not leave a whole affordable increment unspent."""
        from repro.core import repetition_algorithm

        allocation = repetition_algorithm(problem, strict_scenario=False)
        leftover = problem.budget - allocation.total_cost
        cheapest = min(g.unit_cost for g in problem.groups())
        assert leftover < cheapest
