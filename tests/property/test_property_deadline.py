"""Property-based tests for the deadline and quality extensions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import HTuningProblem, TaskSpec
from repro.core import (
    completion_probability,
    majority_correct_probability,
    repetitions_for_quality,
)
from repro.market import LinearPricing

accuracies = st.floats(min_value=0.55, max_value=0.999)
targets = st.floats(min_value=0.5, max_value=0.995)
odd_reps = st.integers(min_value=0, max_value=10).map(lambda k: 2 * k + 1)


@st.composite
def small_problems(draw):
    n_groups = draw(st.integers(min_value=1, max_value=3))
    tasks = []
    tid = 0
    for g in range(n_groups):
        reps = draw(st.integers(min_value=1, max_value=3))
        count = draw(st.integers(min_value=1, max_value=3))
        proc = draw(st.floats(min_value=0.5, max_value=5.0))
        pricing = LinearPricing(
            draw(st.floats(min_value=0.2, max_value=3.0)),
            draw(st.floats(min_value=0.2, max_value=3.0)),
        )
        for _ in range(count):
            tasks.append(TaskSpec(tid, reps, pricing, proc, type_name=f"g{g}"))
            tid += 1
    budget = sum(t.repetitions for t in tasks) * 10
    return HTuningProblem(tasks, budget)


class TestCompletionProbabilityProperties:
    @given(problem=small_problems(), d=st.floats(min_value=0.01, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_probability_in_unit_interval(self, problem, d):
        prices = {g.key: 2 for g in problem.groups()}
        p = completion_probability(problem, prices, d)
        assert 0.0 <= p <= 1.0

    @given(
        problem=small_problems(),
        d1=st.floats(min_value=0.01, max_value=20.0),
        d2=st.floats(min_value=0.01, max_value=20.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_deadline(self, problem, d1, d2):
        lo, hi = sorted((d1, d2))
        prices = {g.key: 2 for g in problem.groups()}
        assert completion_probability(
            problem, prices, lo
        ) <= completion_probability(problem, prices, hi) + 1e-9

    @given(problem=small_problems(), d=st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_prices(self, problem, d):
        cheap = {g.key: 1 for g in problem.groups()}
        rich = {g.key: 5 for g in problem.groups()}
        assert completion_probability(
            problem, cheap, d
        ) <= completion_probability(problem, rich, d) + 1e-9


class TestQualityProperties:
    @given(r=odd_reps, a=accuracies)
    def test_probability_valid(self, r, a):
        p = majority_correct_probability(r, a)
        assert 0.0 <= p <= 1.0

    @given(r=odd_reps, a=accuracies)
    def test_better_than_coin_flip(self, r, a):
        # For accuracy > 1/2 and odd r, majority is at least as good
        # as a single worker.
        assert majority_correct_probability(r, a) >= a - 1e-12 or r == 1

    @given(a=accuracies, t=targets)
    def test_found_repetitions_meet_target(self, a, t):
        try:
            r = repetitions_for_quality(a, t, max_repetitions=199)
        except Exception:
            return  # unreachable targets are allowed to raise
        assert majority_correct_probability(r, a) >= t
        assert r % 2 == 1

    @given(a=accuracies)
    def test_repetitions_decrease_with_accuracy(self, a):
        lo = repetitions_for_quality(a, 0.9, max_repetitions=199)
        hi = repetitions_for_quality(min(a + 0.1, 0.999), 0.9,
                                     max_repetitions=199)
        assert hi <= lo
