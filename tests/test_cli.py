"""Unit tests for the CLI (python -m repro)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig2_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.scenario == "homo"
        assert args.case == "a"

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--scenario", "quantum"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig2", "fig3", "fig4", "fig5ab", "fig5c"):
            assert name in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Motivation Example 1" in out
        assert "Motivation Example 2" in out

    def test_fig2_small(self, capsys):
        assert (
            main(
                [
                    "fig2",
                    "--scenario",
                    "homo",
                    "--case",
                    "a",
                    "--tasks",
                    "6",
                    "--samples",
                    "50",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "budget" in out
        assert "ea" in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--arrivals", "5"]) == 0
        out = capsys.readouterr().out
        assert "epoch/min" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "inferred rate" in out

    def test_fig5ab(self, capsys):
        assert main(["fig5ab"]) == 0
        out = capsys.readouterr().out
        assert "difficulty" in out

    def test_fig5c(self, capsys):
        assert main(["fig5c"]) == 0
        out = capsys.readouterr().out
        assert "OPT t1" in out

    def test_deadline_frontier(self, capsys):
        assert (
            main(
                [
                    "deadline",
                    "--tasks",
                    "10",
                    "--points",
                    "4",
                    "--confidence",
                    "0.8",
                    "0.9",
                    "--max-price",
                    "15",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Deadline–cost frontier" in out
        assert "p0.8" in out
        assert "p0.9" in out

    def test_deadline_comparator_choices_come_from_registry(self, capsys):
        assert (
            main(
                [
                    "deadline",
                    "--tasks",
                    "8",
                    "--points",
                    "3",
                    "--comparator",
                    "reference",
                    "--max-price",
                    "10",
                ]
            )
            == 0
        )
        assert "[reference]" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deadline", "--comparator", "bogus"])
