"""Unit tests for the CLI (python -m repro)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig2_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.scenario == "homo"
        assert args.case == "a"

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--scenario", "quantum"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig2", "fig3", "fig4", "fig5ab", "fig5c"):
            assert name in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Motivation Example 1" in out
        assert "Motivation Example 2" in out

    def test_fig2_small(self, capsys):
        assert (
            main(
                [
                    "fig2",
                    "--scenario",
                    "homo",
                    "--case",
                    "a",
                    "--tasks",
                    "6",
                    "--samples",
                    "50",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "budget" in out
        assert "ea" in out

    def test_fig3(self, capsys):
        assert main(["fig3", "--arrivals", "5"]) == 0
        out = capsys.readouterr().out
        assert "epoch/min" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "inferred rate" in out

    def test_fig5ab(self, capsys):
        assert main(["fig5ab"]) == 0
        out = capsys.readouterr().out
        assert "difficulty" in out

    def test_fig5c(self, capsys):
        assert main(["fig5c"]) == 0
        out = capsys.readouterr().out
        assert "OPT t1" in out

    def test_deadline_frontier(self, capsys):
        assert (
            main(
                [
                    "deadline",
                    "--tasks",
                    "10",
                    "--points",
                    "4",
                    "--confidence",
                    "0.8",
                    "0.9",
                    "--max-price",
                    "15",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Deadline–cost frontier" in out
        assert "p0.8" in out
        assert "p0.9" in out

    def test_deadline_comparator_choices_come_from_registry(self, capsys):
        assert (
            main(
                [
                    "deadline",
                    "--tasks",
                    "8",
                    "--points",
                    "3",
                    "--comparator",
                    "reference",
                    "--max-price",
                    "10",
                ]
            )
            == 0
        )
        assert "[reference]" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deadline", "--comparator", "bogus"])


class TestRegistryCommands:
    """The generic api-facing commands: `repro experiments` / `repro run`."""

    def test_experiments_lists_registry(self, capsys):
        from repro.api import available_experiments

        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in available_experiments():
            assert name in out

    def test_experiments_json_schema(self, capsys):
        import json

        assert main(["experiments", "--json"]) == 0
        schema = json.loads(capsys.readouterr().out)
        assert "fig2" in schema
        assert schema["fig2"]["scenario"]["default"] == "homo"
        assert schema["deadline-frontier"]["confidences"]["default"] == [0.9]

    def test_run_fig2_json_document(self, capsys):
        import json

        assert (
            main(
                [
                    "run",
                    "fig2",
                    "--param",
                    "n_tasks=5",
                    "--param",
                    "n_samples=30",
                    "--param",
                    "budgets=[1000,1500]",
                    "--json",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["experiment"] == "fig2"
        assert doc["spec"]["params"]["budgets"] == [1000, 1500]
        assert len(doc["fingerprint"]) == 16
        assert set(doc["payload"]["series"]) == {"ea", "bias_1", "bias_2"}

    def test_run_matches_legacy_command_path(self, capsys):
        import json

        from repro.experiments import fig2_experiment
        from repro.workloads import PAPER_BUDGETS

        assert (
            main(
                [
                    "--seed",
                    "2",
                    "run",
                    "fig2",
                    "--param",
                    "n_tasks=5",
                    "--param",
                    "n_samples=30",
                    "--json",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        legacy = fig2_experiment(
            "homo", "a", budgets=PAPER_BUDGETS, n_tasks=5, n_samples=30,
            seed=2,
        )
        assert doc["payload"]["series"]["ea"] == list(legacy.series["ea"])

    def test_run_deadline_frontier_with_comparator(self, capsys):
        import json

        assert (
            main(
                [
                    "run",
                    "deadline-frontier",
                    "--param",
                    "n_tasks=6",
                    "--param",
                    "n_deadlines=3",
                    "--param",
                    "max_price=10",
                    "--comparator",
                    "reference",
                    "--json",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["config"]["comparator"] == "reference"
        assert doc["payload"]["comparator"] == "reference"

    def test_run_without_json_prints_fingerprint(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "fingerprint:" in out
        assert "example_1" in out

    def test_run_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_run_bad_param_syntax_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "fig2", "--param", "n_tasks"])

    def test_run_unknown_param_is_clean_error(self):
        with pytest.raises(SystemExit):
            main(["run", "fig2", "--param", "warp_factor=9"])
