"""Unit tests for repro.inference.probe."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference import ProbeSession, RateProbe
from repro.market import LinearPricing, MarketModel, TaskType


@pytest.fixture
def market():
    return MarketModel(LinearPricing(1.0, 1.0))


@pytest.fixture
def vote_type():
    return TaskType("vote", processing_rate=2.0)


class TestProbeSession:
    def test_epochs_increase(self, rng):
        session = ProbeSession(lambda: float(rng.exponential(0.5)), slots=2)
        epochs = [session.step() for _ in range(10)]
        assert all(a <= b for a, b in zip(epochs, epochs[1:]))

    def test_run_until_counts(self, rng):
        session = ProbeSession(lambda: float(rng.exponential(0.1)), slots=1)
        count = session.run_until(5.0)
        assert count == len(session.accept_epochs)
        assert all(e <= 5.0 for e in session.accept_epochs)
        assert session.now == 5.0

    def test_run_count_elapsed(self, rng):
        session = ProbeSession(lambda: float(rng.exponential(0.1)), slots=1)
        elapsed = session.run_count(7)
        assert elapsed == session.accept_epochs[-1]
        assert len(session.accept_epochs) == 7

    def test_validation(self, rng):
        with pytest.raises(InferenceError):
            ProbeSession(lambda: 1.0, slots=0)
        session = ProbeSession(lambda: 1.0, slots=1)
        with pytest.raises(InferenceError):
            session.run_until(0.0)
        with pytest.raises(InferenceError):
            session.run_count(0)

    def test_merged_rate_scales_with_slots(self, rng):
        # s slots of Exp(λ) renewals → merged Poisson rate sλ.
        lam, slots = 2.0, 4
        session = ProbeSession(
            lambda: float(rng.exponential(1 / lam)), slots=slots
        )
        count = session.run_until(200.0)
        assert count / 200.0 == pytest.approx(slots * lam, rel=0.1)


class TestRateProbe:
    def test_fixed_period_recovers_rate(self, market, vote_type):
        probe = RateProbe(market, vote_type, slots=4, seed=0)
        est = probe.fixed_period(price=4, period=500.0)
        # λ_o(4) = 5
        assert est.rate == pytest.approx(5.0, rel=0.1)

    def test_random_period_recovers_rate(self, market, vote_type):
        probe = RateProbe(market, vote_type, slots=4, seed=1)
        est = probe.random_period(price=4, n_events=2000)
        assert est.rate == pytest.approx(5.0, rel=0.1)

    def test_ci_scaled_by_slots(self, market, vote_type):
        probe = RateProbe(market, vote_type, slots=10, seed=2)
        est = probe.fixed_period(price=4, period=100.0)
        assert est.ci_low < est.rate < est.ci_high

    def test_processing_rate_inference(self, market, vote_type):
        probe = RateProbe(market, vote_type, slots=4, seed=3)
        rate_p, overall, onhold = probe.processing_rate(price=4, n_events=4000)
        assert rate_p == pytest.approx(2.0, rel=0.15)
        assert overall.rate < onhold.rate  # overall is slower than phase 1

    def test_processing_needs_enough_events(self, market, vote_type):
        probe = RateProbe(market, vote_type, seed=0)
        with pytest.raises(InferenceError):
            probe.processing_rate(price=4, n_events=1)

    def test_slots_validation(self, market, vote_type):
        with pytest.raises(InferenceError):
            RateProbe(market, vote_type, slots=0)

    def test_deterministic_given_seed(self, market, vote_type):
        a = RateProbe(market, vote_type, slots=2, seed=7).fixed_period(3, 50.0)
        b = RateProbe(market, vote_type, slots=2, seed=7).fixed_period(3, 50.0)
        assert a.rate == b.rate

    def test_attractiveness_lowers_probed_rate(self, market):
        dull = TaskType("dull", processing_rate=2.0, attractiveness=0.5)
        probe = RateProbe(market, dull, slots=4, seed=4)
        est = probe.fixed_period(price=4, period=500.0)
        # λ_o(4)·0.5 = 2.5
        assert est.rate == pytest.approx(2.5, rel=0.1)
