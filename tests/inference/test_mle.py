"""Unit tests for repro.inference.mle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference import (
    estimate_rate_fixed_period,
    estimate_rate_random_period,
)


class TestFixedPeriod:
    def test_mle_is_n_over_t(self):
        est = estimate_rate_fixed_period(20, 4.0)
        assert est.rate == pytest.approx(5.0)
        assert est.method == "fixed_period"

    def test_zero_events_gives_zero_rate(self):
        est = estimate_rate_fixed_period(0, 10.0)
        assert est.rate == 0.0
        assert est.ci_low == 0.0
        assert est.ci_high > 0.0
        assert est.mean_interarrival == np.inf

    def test_ci_contains_rate(self):
        est = estimate_rate_fixed_period(50, 10.0)
        assert est.ci_low < est.rate < est.ci_high

    def test_ci_tightens_with_data(self):
        loose = estimate_rate_fixed_period(10, 2.0)
        tight = estimate_rate_fixed_period(1000, 200.0)
        assert (tight.ci_high - tight.ci_low) < (loose.ci_high - loose.ci_low)

    def test_coverage_monte_carlo(self, rng):
        # The 95% Garwood interval must cover the true rate ~95% of the time.
        lam, t0, trials = 3.0, 20.0, 400
        covered = 0
        for _ in range(trials):
            n = rng.poisson(lam * t0)
            est = estimate_rate_fixed_period(int(n), t0)
            if est.ci_low <= lam <= est.ci_high:
                covered += 1
        assert covered / trials > 0.9

    def test_unbiasedness(self, rng):
        # Appendix A: the fixed-period MLE is unbiased.
        lam, t0 = 2.0, 50.0
        estimates = [
            estimate_rate_fixed_period(int(rng.poisson(lam * t0)), t0).rate
            for _ in range(3000)
        ]
        assert np.mean(estimates) == pytest.approx(lam, rel=0.02)

    def test_validation(self):
        with pytest.raises(InferenceError):
            estimate_rate_fixed_period(-1, 1.0)
        with pytest.raises(InferenceError):
            estimate_rate_fixed_period(5, 0.0)
        with pytest.raises(InferenceError):
            estimate_rate_fixed_period(5, 1.0, confidence=1.5)


class TestRandomPeriod:
    def test_debiased_rate(self):
        est = estimate_rate_random_period(10, 5.0)
        assert est.rate == pytest.approx(9 / 5.0)
        assert "debiased" in est.method

    def test_raw_rate(self):
        est = estimate_rate_random_period(10, 5.0, debias=False)
        assert est.rate == pytest.approx(2.0)

    def test_debias_needs_two_events(self):
        with pytest.raises(InferenceError):
            estimate_rate_random_period(1, 3.0)
        # raw works with one event
        est = estimate_rate_random_period(1, 3.0, debias=False)
        assert est.rate == pytest.approx(1 / 3.0)

    def test_raw_estimator_biased_upward(self, rng):
        # E[N/T] = λN/(N−1): the raw estimator overshoots.
        lam, n, trials = 2.0, 5, 4000
        raw, debiased = [], []
        for _ in range(trials):
            t = rng.gamma(n, 1 / lam)
            raw.append(estimate_rate_random_period(n, t, debias=False).rate)
            debiased.append(estimate_rate_random_period(n, t).rate)
        assert np.mean(raw) == pytest.approx(lam * n / (n - 1), rel=0.03)
        assert np.mean(debiased) == pytest.approx(lam, rel=0.03)

    def test_ci_contains_rate(self):
        est = estimate_rate_random_period(50, 25.0)
        assert est.ci_low < est.rate < est.ci_high

    def test_validation(self):
        with pytest.raises(InferenceError):
            estimate_rate_random_period(0, 1.0)
        with pytest.raises(InferenceError):
            estimate_rate_random_period(5, -1.0)
        with pytest.raises(InferenceError):
            estimate_rate_random_period(5, 1.0, confidence=0.0)
