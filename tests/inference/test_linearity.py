"""Unit tests for repro.inference.linearity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.inference import (
    RateEstimate,
    estimate_rate_fixed_period,
    fit_linearity,
    paper_amt_rates,
)
from repro.market import LinearPricing


class TestFitLinearity:
    def test_exact_line_recovered(self):
        prices = [1, 2, 3, 4]
        rates = [2 * p + 0.5 for p in prices]
        fit = fit_linearity(prices, rates)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(0.5)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.supports_hypothesis

    def test_prediction(self):
        fit = fit_linearity([1, 2, 3], [1.0, 2.0, 3.0])
        assert fit.predict(10) == pytest.approx(10.0)

    def test_residuals_sum_to_zero_unweighted(self):
        fit = fit_linearity([1, 2, 3, 4], [1.1, 1.9, 3.2, 3.8])
        assert sum(fit.residuals) == pytest.approx(0.0, abs=1e-9)

    def test_rate_estimate_inputs_weighted(self):
        estimates = [
            estimate_rate_fixed_period(100, 50.0),   # rate 2, lots of data
            estimate_rate_fixed_period(4, 1.0),      # rate 4, little data
        ]
        fit = fit_linearity([2.0, 4.0], estimates)
        assert fit.slope == pytest.approx(1.0, rel=0.2)

    def test_needs_two_distinct_prices(self):
        with pytest.raises(InferenceError):
            fit_linearity([2, 2], [1.0, 2.0])
        with pytest.raises(InferenceError):
            fit_linearity([2], [1.0])

    def test_length_mismatch(self):
        with pytest.raises(InferenceError):
            fit_linearity([1, 2], [1.0])

    def test_negative_rate_rejected(self):
        with pytest.raises(InferenceError):
            fit_linearity([1, 2], [1.0, -0.5])

    def test_explicit_weights(self):
        fit = fit_linearity([1, 2, 3], [1.0, 2.0, 10.0], weights=[1, 1, 1e-9])
        # The outlier at p=3 is down-weighted to nothing.
        assert fit.slope == pytest.approx(1.0, rel=0.01)

    def test_weight_validation(self):
        with pytest.raises(InferenceError):
            fit_linearity([1, 2], [1.0, 2.0], weights=[1.0])
        with pytest.raises(InferenceError):
            fit_linearity([1, 2], [1.0, 2.0], weights=[1.0, 0.0])

    def test_to_pricing_model(self):
        fit = fit_linearity([1, 2, 3], [2.0, 4.0, 6.0])
        model = fit.to_pricing_model()
        assert isinstance(model, LinearPricing)
        assert model(2) == pytest.approx(4.0)

    def test_to_pricing_model_clamps_negative_intercept(self):
        fit = fit_linearity([1, 2, 3], [0.5, 2.0, 3.1])
        model = fit.to_pricing_model()
        assert model(1) > 0

    def test_noisy_data_supports_hypothesis(self, rng):
        prices = np.arange(1, 11, dtype=float)
        rates = 1.5 * prices + 1.0 + rng.normal(0, 0.2, size=10)
        fit = fit_linearity(prices, np.abs(rates))
        assert fit.supports_hypothesis

    def test_nonlinear_data_lower_r2(self):
        prices = np.arange(1, 20, dtype=float)
        rates = np.exp(prices / 3.0)
        fit = fit_linearity(prices, rates)
        assert fit.r_squared < 0.95


class TestPaperAmtRates:
    def test_values(self):
        prices, rates = paper_amt_rates()
        assert prices == (5.0, 8.0, 10.0, 12.0)
        assert rates == (0.0038, 0.0062, 0.0121, 0.0131)

    def test_supports_linearity_hypothesis(self):
        # The paper's own Fig. 4 reading: these four points are linear.
        prices, rates = paper_amt_rates()
        fit = fit_linearity(prices, rates)
        assert fit.supports_hypothesis
        assert fit.slope > 0
