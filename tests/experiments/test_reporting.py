"""Unit tests for repro.experiments.reporting."""

from __future__ import annotations

from repro.experiments import format_kv, format_series, format_table


class TestFormatTable:
    def test_headers_and_rows(self):
        out = format_table(["x", "y"], [(1, 2.5), (10, 3.25)])
        lines = out.splitlines()
        assert "x" in lines[0] and "y" in lines[0]
        assert "2.5" in out and "3.25" in out

    def test_title(self):
        out = format_table(["a"], [(1,)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        out = format_table(["col"], [(1,), (1000,)])
        lines = out.splitlines()
        assert len(lines[-1]) == len(lines[-2])

    def test_float_format(self):
        out = format_table(["v"], [(3.14159,)], float_fmt="{:.2f}")
        assert "3.14" in out


class TestFormatSeries:
    def test_series_table(self):
        out = format_series(
            "budget", [100, 200], {"opt": [1.0, 0.5], "base": [2.0, 1.0]}
        )
        assert "budget" in out
        assert "opt" in out and "base" in out
        assert "0.5" in out

    def test_sorted_series_names(self):
        out = format_series("x", [1], {"zeta": [1.0], "alpha": [2.0]})
        header = out.splitlines()[0]
        assert header.index("alpha") < header.index("zeta")


class TestFormatKv:
    def test_pairs(self):
        out = format_kv({"key": "value", "pi": 3.14159})
        assert "key" in out and "value" in out
        assert "3.14159" in out

    def test_title(self):
        out = format_kv({"a": 1}, title="Diagnostics")
        assert out.splitlines()[0] == "Diagnostics"

    def test_empty(self):
        assert format_kv({}) == ""
