"""Unit tests for the Monte-Carlo confidence-interval evaluator."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Allocation, HTuningProblem, TaskSpec
from repro.core import expected_job_latency
from repro.errors import ModelError
from repro.experiments import evaluate_allocation_with_ci
from repro.market import LinearPricing


@pytest.fixture
def problem():
    pricing = LinearPricing(1.0, 1.0)
    tasks = [TaskSpec(i, 2, pricing, 2.0) for i in range(8)]
    return HTuningProblem(tasks, budget=100)


@pytest.fixture
def allocation(problem):
    return Allocation.uniform(problem, 5)


class TestEvaluateAllocationWithCi:
    def test_interval_near_truth(self, problem, allocation):
        # A single 95% interval may legitimately miss by a hair; check
        # the truth sits within a few interval-widths (the exact
        # coverage rate is asserted separately over many seeds).
        truth = expected_job_latency(problem, allocation)
        mean, lo, hi = evaluate_allocation_with_ci(
            problem, allocation, n_samples=40_000, rng=0
        )
        width = hi - lo
        assert lo - 2 * width < truth < hi + 2 * width
        assert lo < mean < hi

    def test_interval_shrinks_with_samples(self, problem, allocation):
        _, lo1, hi1 = evaluate_allocation_with_ci(
            problem, allocation, n_samples=500, rng=0
        )
        _, lo2, hi2 = evaluate_allocation_with_ci(
            problem, allocation, n_samples=50_000, rng=0
        )
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_higher_confidence_wider(self, problem, allocation):
        _, lo1, hi1 = evaluate_allocation_with_ci(
            problem, allocation, n_samples=5000, rng=0, confidence=0.5
        )
        _, lo2, hi2 = evaluate_allocation_with_ci(
            problem, allocation, n_samples=5000, rng=0, confidence=0.99
        )
        assert (hi2 - lo2) > (hi1 - lo1)

    def test_coverage(self, problem, allocation):
        truth = expected_job_latency(problem, allocation)
        covered = 0
        trials = 60
        for seed in range(trials):
            _, lo, hi = evaluate_allocation_with_ci(
                problem, allocation, n_samples=2000, rng=seed,
                confidence=0.95,
            )
            if lo <= truth <= hi:
                covered += 1
        assert covered / trials > 0.85

    def test_validation(self, problem, allocation):
        with pytest.raises(ModelError):
            evaluate_allocation_with_ci(
                problem, allocation, confidence=1.5
            )
