"""Unit tests for repro.experiments.pareto."""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.errors import ModelError
from repro.experiments import (
    budget_latency_frontier,
    deadline_cost_frontier,
    min_budget_for_latency,
)
from repro.workloads import homogeneity_workload, repetition_family


@pytest.fixture
def factory():
    return functools.partial(homogeneity_workload, n_tasks=10, repetitions=2)


class TestBudgetLatencyFrontier:
    def test_monotone_decreasing(self, factory):
        frontier = budget_latency_frontier(factory, budgets=[40, 80, 160, 320])
        assert frontier.is_monotone()

    def test_budgets_sorted(self, factory):
        frontier = budget_latency_frontier(factory, budgets=[320, 40, 160])
        assert frontier.budgets == (40, 160, 320)

    def test_points_carry_strategy(self, factory):
        frontier = budget_latency_frontier(factory, budgets=[40])
        assert frontier.points[0].strategy == "ea"

    def test_knee_is_a_frontier_point(self, factory):
        frontier = budget_latency_frontier(
            factory, budgets=[20, 40, 80, 160, 320, 640]
        )
        knee = frontier.knee()
        assert knee in frontier.points
        # The knee is never the most expensive point on a convex
        # diminishing-returns curve.
        assert knee.budget < frontier.budgets[-1]

    def test_knee_short_curve(self, factory):
        frontier = budget_latency_frontier(factory, budgets=[40, 80])
        assert frontier.knee() == frontier.points[-1]

    def test_empty_budgets_rejected(self, factory):
        with pytest.raises(ModelError):
            budget_latency_frontier(factory, budgets=[])


class TestDeadlineCostFrontier:
    """The dual sweep: cheapest spend per deadline."""

    @pytest.fixture
    def family(self):
        return repetition_family(n_tasks=12)

    def test_feasible_region_monotone(self, family):
        frontier = deadline_cost_frontier(
            family, np.linspace(2.0, 12.0, 6), confidence=0.9, max_price=25
        )
        assert frontier.is_monotone()
        assert frontier.deadlines == tuple(
            sorted(frontier.deadlines)
        )

    def test_comparators_produce_identical_curves(self, family):
        deadlines = [2.5, 4.0, 7.0, 10.0]
        batched = deadline_cost_frontier(
            family, deadlines, confidence=0.85, max_price=20
        )
        reference = deadline_cost_frontier(
            family,
            deadlines,
            confidence=0.85,
            max_price=20,
            comparator="reference",
        )
        assert batched.costs == reference.costs
        assert [p.achieved_probability for p in batched.points] == [
            p.achieved_probability for p in reference.points
        ]
        assert [p.group_prices for p in batched.points] == [
            p.group_prices for p in reference.points
        ]

    def test_task_list_workload_equals_family(self, family):
        deadlines = [3.0, 6.0]
        via_family = deadline_cost_frontier(
            family, deadlines, confidence=0.8, max_price=15
        )
        via_tasks = deadline_cost_frontier(
            list(family.tasks), deadlines, confidence=0.8, max_price=15
        )
        assert via_family.costs == via_tasks.costs

    def test_unsorted_deadlines_are_sorted(self, family):
        frontier = deadline_cost_frontier(
            family, [8.0, 2.0, 5.0], confidence=0.8, max_price=15
        )
        assert frontier.deadlines == (2.0, 5.0, 8.0)

    def test_points_carry_prices_and_feasibility(self, family):
        frontier = deadline_cost_frontier(
            family, [6.0], confidence=0.8, max_price=25
        )
        point = frontier.points[0]
        assert point.group_prices is not None
        assert point.feasible == (
            point.achieved_probability >= frontier.confidence
        )

    def test_knee_and_cheapest_feasible(self, family):
        frontier = deadline_cost_frontier(
            family, np.linspace(2.0, 14.0, 8), confidence=0.9, max_price=25
        )
        cheapest = frontier.cheapest_feasible()
        if cheapest is not None:
            assert cheapest.feasible
            assert cheapest.deadline == min(
                p.deadline for p in frontier.feasible_points()
            )
        assert frontier.knee() in frontier.points

    def test_empty_deadlines_rejected(self, family):
        with pytest.raises(ModelError):
            deadline_cost_frontier(family, [])

    def test_unknown_comparator_rejected(self, family):
        with pytest.raises(ModelError):
            deadline_cost_frontier(family, [2.0], comparator="bogus")

    def test_sweep_rejects_duplicate_confidence_labels(self, family):
        from repro.experiments import (
            deadline_frontier_experiment,
            run_deadline_sweep,
        )

        with pytest.raises(ModelError):
            run_deadline_sweep(
                family, [3.0], confidences=(0.9, 0.9), max_price=10
            )
        # Empty confidences are rejected with the library error even
        # when the deadline grid is auto-generated.
        with pytest.raises(ModelError):
            deadline_frontier_experiment(
                n_tasks=6, n_deadlines=3, confidences=(), max_price=8
            )


class TestMinBudgetForLatency:
    def test_finds_threshold(self, factory):
        frontier = budget_latency_frontier(factory, budgets=[40, 80, 160, 320])
        target = frontier.latencies[2]  # achievable at budget 160
        budget = min_budget_for_latency(
            factory, target_latency=target, budget_lo=20, budget_hi=320
        )
        assert budget is not None
        assert budget <= 160
        # One unit less must miss the target (minimality up to search
        # granularity).
        if budget > 20:
            from repro import Tuner
            from repro.core import expected_job_latency

            problem = factory(budget - 1)
            allocation = Tuner(seed=0).tune(problem)
            assert expected_job_latency(problem, allocation) > target

    def test_unreachable_target(self, factory):
        budget = min_budget_for_latency(
            factory, target_latency=1e-6, budget_lo=20, budget_hi=100
        )
        assert budget is None

    def test_validation(self, factory):
        with pytest.raises(ModelError):
            min_budget_for_latency(factory, 0.0, 10, 20)
        with pytest.raises(ModelError):
            min_budget_for_latency(factory, 1.0, 30, 20)
