"""Unit tests for repro.experiments.pareto."""

from __future__ import annotations

import functools

import pytest

from repro.errors import ModelError
from repro.experiments import (
    budget_latency_frontier,
    min_budget_for_latency,
)
from repro.workloads import homogeneity_workload


@pytest.fixture
def factory():
    return functools.partial(homogeneity_workload, n_tasks=10, repetitions=2)


class TestBudgetLatencyFrontier:
    def test_monotone_decreasing(self, factory):
        frontier = budget_latency_frontier(factory, budgets=[40, 80, 160, 320])
        assert frontier.is_monotone()

    def test_budgets_sorted(self, factory):
        frontier = budget_latency_frontier(factory, budgets=[320, 40, 160])
        assert frontier.budgets == (40, 160, 320)

    def test_points_carry_strategy(self, factory):
        frontier = budget_latency_frontier(factory, budgets=[40])
        assert frontier.points[0].strategy == "ea"

    def test_knee_is_a_frontier_point(self, factory):
        frontier = budget_latency_frontier(
            factory, budgets=[20, 40, 80, 160, 320, 640]
        )
        knee = frontier.knee()
        assert knee in frontier.points
        # The knee is never the most expensive point on a convex
        # diminishing-returns curve.
        assert knee.budget < frontier.budgets[-1]

    def test_knee_short_curve(self, factory):
        frontier = budget_latency_frontier(factory, budgets=[40, 80])
        assert frontier.knee() == frontier.points[-1]

    def test_empty_budgets_rejected(self, factory):
        with pytest.raises(ModelError):
            budget_latency_frontier(factory, budgets=[])


class TestMinBudgetForLatency:
    def test_finds_threshold(self, factory):
        frontier = budget_latency_frontier(factory, budgets=[40, 80, 160, 320])
        target = frontier.latencies[2]  # achievable at budget 160
        budget = min_budget_for_latency(
            factory, target_latency=target, budget_lo=20, budget_hi=320
        )
        assert budget is not None
        assert budget <= 160
        # One unit less must miss the target (minimality up to search
        # granularity).
        if budget > 20:
            from repro import Tuner
            from repro.core import expected_job_latency

            problem = factory(budget - 1)
            allocation = Tuner(seed=0).tune(problem)
            assert expected_job_latency(problem, allocation) > target

    def test_unreachable_target(self, factory):
        budget = min_budget_for_latency(
            factory, target_latency=1e-6, budget_lo=20, budget_hi=100
        )
        assert budget is None

    def test_validation(self, factory):
        with pytest.raises(ModelError):
            min_budget_for_latency(factory, 0.0, 10, 20)
        with pytest.raises(ModelError):
            min_budget_for_latency(factory, 1.0, 30, 20)
