"""Replication fan-out of the figure harnesses through the engine
registry: byte-identical outputs for every engine, legacy defaults
untouched."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.experiments import (
    evaluate_allocation_with_ci,
    fig3_experiment,
    fig4_experiment,
    fig5ab_experiment,
)


class TestFig3Replications:
    def test_engines_byte_identical(self):
        reference = fig3_experiment(n_arrivals=8, seed=0)
        for engine in ("scalar", "batch", "agent-batch"):
            assert fig3_experiment(n_arrivals=8, seed=0, engine=engine) == (
                reference
            )

    def test_multi_replication_engines_byte_identical(self):
        sequential = fig3_experiment(
            n_arrivals=8, seed=0, replications=4, engine="scalar"
        )
        lockstep = fig3_experiment(
            n_arrivals=8, seed=0, replications=4, engine="agent-batch"
        )
        assert sequential == lockstep
        # Averaging over worlds changes the figure (it smooths noise).
        assert sequential != fig3_experiment(n_arrivals=8, seed=0)
        assert len(sequential.arrival_epochs) == 8

    def test_replications_validated(self):
        with pytest.raises(ModelError):
            fig3_experiment(n_arrivals=4, replications=0)


class TestFig4Replications:
    def test_aggregate_default_untouched_by_engine_alias(self):
        assert fig4_experiment(seed=0) == fig4_experiment(
            seed=0, engine="aggregate"
        )

    def test_agent_engines_byte_identical(self):
        sequential = fig4_experiment(
            prices=(5, 8), repetitions=4, seed=0, replications=3,
            engine="scalar",
        )
        lockstep = fig4_experiment(
            prices=(5, 8), repetitions=4, seed=0, replications=3,
            engine="agent-batch",
        )
        assert sequential == lockstep
        assert sequential.prices == (5, 8)
        assert all(
            len(orders) == 4 for orders in sequential.latency_orders.values()
        )

    def test_aggregate_path_rejects_fanout(self):
        with pytest.raises(ModelError):
            fig4_experiment(seed=0, replications=3)


class TestFig5abReplications:
    def test_aggregate_default_untouched_by_engine_alias(self):
        assert fig5ab_experiment(
            vote_counts=(4, 6), prices=(5,), repetitions=2, n_tasks=3, seed=0
        ) == fig5ab_experiment(
            vote_counts=(4, 6), prices=(5,), repetitions=2, n_tasks=3,
            seed=0, engine="aggregate",
        )

    def test_agent_engines_byte_identical(self):
        kwargs = dict(
            vote_counts=(4, 6),
            prices=(5,),
            repetitions=2,
            n_tasks=3,
            seed=0,
            replications=2,
        )
        sequential = fig5ab_experiment(engine="scalar", **kwargs)
        lockstep = fig5ab_experiment(engine="agent-batch", **kwargs)
        assert sequential == lockstep

    def test_aggregate_path_rejects_fanout(self):
        with pytest.raises(ModelError):
            fig5ab_experiment(seed=0, replications=2)


class TestCiEngineParameter:
    def test_ci_byte_identical_across_engines(self):
        from repro import Allocation, HTuningProblem, TaskSpec
        from repro.market import LinearPricing

        pricing = LinearPricing(1.0, 1.0)
        tasks = [TaskSpec(i, 2, pricing, 2.0) for i in range(6)]
        problem = HTuningProblem(tasks, budget=100)
        allocation = Allocation.uniform(problem, 4)
        reference = evaluate_allocation_with_ci(
            problem, allocation, n_samples=500, rng=0
        )
        for engine in ("scalar", "batch", "chunked-batch", "agent-batch"):
            assert (
                evaluate_allocation_with_ci(
                    problem, allocation, n_samples=500, rng=0, engine=engine
                )
                == reference
            )
