"""Acceptance tests for the family/one-pass sweep refactor.

The hard contract: routing ``fig2_experiment`` / ``run_budget_sweep``
through :class:`~repro.workloads.families.ProblemFamily` and the
one-pass DP sweep must produce **byte-identical** results to the
historical per-budget rebuild path, for every scenario and scoring
backend.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.core import (
    Tuner,
    heterogeneous_algorithm,
    heterogeneous_algorithm_sweep,
    repetition_algorithm,
    repetition_algorithm_sweep,
    tune_budget_sweep,
    utopia_point,
    utopia_point_sweep,
)
from repro.errors import InfeasibleAllocationError
from repro.experiments import (
    budget_latency_frontier,
    fig2_experiment,
    run_budget_sweep,
)
from repro.workloads import (
    heterogeneous_family,
    heterogeneous_workload,
    homogeneity_workload,
    repetition_family,
    repetition_workload,
    scenario_family,
)

BUDGETS = (500, 1000, 1500, 2000)

_LEGACY_FACTORIES = {
    "homo": homogeneity_workload,
    "repe": repetition_workload,
    "heter": heterogeneous_workload,
}
_SCENARIO_STRATEGIES = {
    "homo": ("ea", "bias_1", "bias_2"),
    "repe": ("ra", "te", "re"),
    "heter": ("ha", "te", "re"),
}


class TestOnePassTuners:
    def test_ra_sweep_bit_identical(self):
        family = repetition_family(n_tasks=20)
        sweep = repetition_algorithm_sweep(family, BUDGETS)
        for budget in BUDGETS:
            reference = repetition_algorithm(
                family.problem_at(budget), strict_scenario=False
            )
            assert sweep[budget] == reference

    def test_ha_sweep_bit_identical(self):
        family = heterogeneous_family(n_tasks=20)
        sweep = heterogeneous_algorithm_sweep(family, BUDGETS)
        for budget in BUDGETS:
            assert sweep[budget] == heterogeneous_algorithm(
                family.problem_at(budget)
            )

    def test_utopia_sweep_bit_identical(self):
        family = heterogeneous_family(n_tasks=16)
        sweep = utopia_point_sweep(family, BUDGETS)
        for budget in BUDGETS:
            assert sweep[budget] == utopia_point(family.problem_at(budget))

    def test_tune_budget_sweep_registry(self):
        family = repetition_family(n_tasks=10)
        assert tune_budget_sweep(family, [300, 600], "ra") is not None
        assert tune_budget_sweep(family, [300, 600], "ea") is None
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            tune_budget_sweep(family, [300], "teleport")

    def test_infeasible_budget_raises(self):
        family = repetition_family(n_tasks=20)
        with pytest.raises(InfeasibleAllocationError):
            repetition_algorithm_sweep(family, [10, 2000])
        with pytest.raises(InfeasibleAllocationError):
            heterogeneous_algorithm_sweep(
                heterogeneous_family(n_tasks=20), [10, 2000]
            )


class TestSweepByteIdentity:
    @pytest.mark.parametrize("scenario", ["homo", "repe", "heter"])
    @pytest.mark.parametrize("scoring", ["mc", "numeric"])
    def test_family_sweep_equals_legacy_closure_sweep(self, scenario, scoring):
        family = scenario_family(scenario, n_tasks=20)
        legacy = functools.partial(_LEGACY_FACTORIES[scenario], n_tasks=20)
        kwargs = dict(
            budgets=BUDGETS,
            strategies=_SCENARIO_STRATEGIES[scenario],
            scoring=scoring,
            n_samples=200,
            seed=17,
        )
        fam_result = run_budget_sweep(family, **kwargs)
        legacy_result = run_budget_sweep(lambda b: legacy(b), **kwargs)
        assert fam_result.budgets == legacy_result.budgets
        # Byte-identical: exact float equality, not approx.
        assert fam_result.series == legacy_result.series

    @pytest.mark.parametrize("scenario", ["repe", "heter"])
    def test_fig2_byte_identical_across_engines(self, scenario):
        base = fig2_experiment(
            scenario, case="a", budgets=(800, 1600), n_tasks=12,
            n_samples=150, seed=3,
        )
        for engine in ("batch", "chunked-batch"):
            other = fig2_experiment(
                scenario, case="a", budgets=(800, 1600), n_tasks=12,
                n_samples=150, seed=3, engine=engine,
            )
            assert other.series == base.series


class TestFrontierFamilyPath:
    def test_family_frontier_equals_legacy(self):
        family = repetition_family(n_tasks=10)
        legacy = functools.partial(repetition_workload, n_tasks=10)
        a = budget_latency_frontier(family, budgets=[100, 200, 400])
        b = budget_latency_frontier(legacy, budgets=[100, 200, 400])
        assert a.latencies == b.latencies
        assert [p.strategy for p in a.points] == [
            p.strategy for p in b.points
        ]

    def test_explicit_strategy_one_pass(self):
        family = heterogeneous_family(n_tasks=10)
        a = budget_latency_frontier(
            family, budgets=[150, 300], tuner=Tuner(strategy="ha")
        )
        b = budget_latency_frontier(
            lambda bu: family.problem_at(bu),
            budgets=[150, 300],
            tuner=Tuner(strategy="ha"),
        )
        assert a.latencies == b.latencies

    def test_shared_grid_scoring(self):
        family = repetition_family(n_tasks=10)
        per_alloc = budget_latency_frontier(family, budgets=[100, 200, 400])
        shared = budget_latency_frontier(
            family, budgets=[100, 200, 400], shared_grid=True
        )
        assert shared.is_monotone(tolerance=1e-6)
        for a, b in zip(per_alloc.latencies, shared.latencies):
            assert a == pytest.approx(b, rel=1e-3)

    def test_shared_grid_needs_family(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            budget_latency_frontier(
                lambda b: repetition_workload(b, n_tasks=4),
                budgets=[100],
                shared_grid=True,
            )


class TestExhaustiveSharedGrid:
    def test_matches_per_allocation_argmin(self):
        from repro.core import (
            Allocation,
            exhaustive_latency_search,
            expected_job_latency,
        )

        problem = repetition_workload(60, n_tasks=4)
        prices, value = exhaustive_latency_search(problem)
        best_alloc = Allocation.from_group_prices(problem, prices)
        # Reference: per-allocation grids, brute force.
        from repro.core import exhaustive_group_search

        ref_prices, _ = exhaustive_group_search(
            problem,
            lambda pb, gp: expected_job_latency(
                pb, Allocation.from_group_prices(pb, gp)
            ),
        )
        assert prices == ref_prices
        assert value == pytest.approx(
            expected_job_latency(problem, best_alloc), rel=1e-3
        )
