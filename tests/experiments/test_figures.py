"""Unit tests for repro.experiments.figures (per-figure harness).

These use reduced sizes for speed; the full paper parameters run in
``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.experiments import (
    fig2_experiment,
    fig3_experiment,
    fig4_experiment,
    fig5ab_experiment,
    fig5c_experiment,
    motivation_example_1,
    motivation_example_2,
)


class TestMotivationExamples:
    def test_example_1_load_sensitive_wins(self):
        result = motivation_example_1()
        assert result.load_sensitive_wins
        assert 0.0 < result.improvement < 1.0

    def test_example_1_case2_value(self):
        # With Table 1's rates the load-sensitive case is
        # E[max(Exp(2), Erlang(2, 2))] = 1.125 exactly.
        result = motivation_example_1()
        assert result.load_sensitive_latency == pytest.approx(1.125, rel=1e-3)

    def test_example_2_balanced_wins(self):
        result = motivation_example_2()
        assert result.load_sensitive_wins


class TestFig2:
    @pytest.mark.parametrize("scenario", ["homo", "repe", "heter"])
    def test_opt_dominates_numeric(self, scenario):
        result = fig2_experiment(
            scenario,
            case="a",
            budgets=(1000, 3000, 5000),
            n_tasks=20,
            scoring="numeric",
        )
        opt = {"homo": "ea", "repe": "ra", "heter": "ha"}[scenario]
        for baseline in result.series:
            if baseline == opt:
                continue
            # Within half a percent at worst (surrogate approximation).
            assert result.dominates(
                opt, baseline, slack=0.01 * max(result.series[baseline])
            )

    def test_latency_decreases_with_budget(self):
        result = fig2_experiment(
            "homo", case="a", budgets=(1000, 2000, 4000), n_tasks=20,
            scoring="numeric",
        )
        curve = result.series["ea"]
        assert curve[0] > curve[1] > curve[2]

    def test_flat_market_insensitive_to_budget(self):
        # Case (c): λ = 0.1p + 10 — price barely matters.
        result = fig2_experiment(
            "homo", case="c", budgets=(1000, 5000), n_tasks=20,
            scoring="numeric",
        )
        lo, hi = result.series["ea"]
        assert abs(lo - hi) / lo < 0.15

    def test_unknown_scenario(self):
        with pytest.raises(ModelError):
            fig2_experiment("quantum", case="a")


class TestFig3:
    def test_poisson_linearity(self):
        result = fig3_experiment(n_arrivals=20, seed=0)
        assert len(result.arrival_epochs) == 20
        assert result.linearity_r2 > 0.8
        assert all(
            a <= b for a, b in zip(result.arrival_epochs, result.arrival_epochs[1:])
        )

    def test_phase_measurements_present(self):
        result = fig3_experiment(n_arrivals=10, seed=1)
        assert len(result.phase1_latencies) == 10
        assert len(result.phase2_latencies) == 10
        assert all(v >= 0 for v in result.phase1_latencies)


class TestFig4:
    def test_monotone_latency_in_reward(self):
        result = fig4_experiment(seed=0)
        assert result.monotone_in_price or result.fit.slope > 0

    def test_rates_increase_with_price(self):
        result = fig4_experiment(seed=0)
        assert result.inferred_rates[12] > result.inferred_rates[5]

    def test_fit_positive_slope(self):
        result = fig4_experiment(seed=0)
        assert result.fit.slope > 0


class TestFig5ab:
    def test_difficulty_orderings(self):
        result = fig5ab_experiment(
            repetitions=10, n_tasks=30, seed=0
        )
        for price in result.prices:
            assert result.phase1_increases_with_difficulty(price)
            assert result.phase2_increases_with_difficulty(price)


class TestFig5c:
    def test_opt_beats_heuristic(self):
        result = fig5c_experiment(
            budgets=(600, 800, 1000), n_samples=400, seed=0
        )
        assert result.opt_beats_heuristic

    def test_overall_series_lengths(self):
        result = fig5c_experiment(budgets=(600, 1000), n_samples=200, seed=0)
        assert len(result.overall("opt")) == 2
        assert len(result.overall("heu")) == 2
