"""Unit tests for repro.experiments.runner."""

from __future__ import annotations

import functools

import pytest

from repro.errors import ModelError
from repro.experiments import evaluate_allocation, run_budget_sweep
from repro.workloads import homogeneity_workload


@pytest.fixture
def factory():
    return functools.partial(homogeneity_workload, n_tasks=10, repetitions=2)


class TestEvaluateAllocation:
    def test_mc_and_numeric_agree(self, factory):
        from repro.core import even_allocation

        problem = factory(100)
        alloc = even_allocation(problem, rng=0)
        mc = evaluate_allocation(
            problem, alloc, scoring="mc", n_samples=40000, rng=0
        )
        numeric = evaluate_allocation(problem, alloc, scoring="numeric")
        assert mc == pytest.approx(numeric, rel=0.03)

    def test_unknown_scoring(self, factory):
        from repro.core import even_allocation

        problem = factory(100)
        alloc = even_allocation(problem, rng=0)
        with pytest.raises(ModelError):
            evaluate_allocation(problem, alloc, scoring="vibes")


class TestRunBudgetSweep:
    def test_structure(self, factory):
        result = run_budget_sweep(
            factory, budgets=[40, 80], strategies=["ea", "bias_1"],
            scoring="numeric",
        )
        assert result.budgets == (40, 80)
        assert set(result.series) == {"ea", "bias_1"}
        assert all(len(v) == 2 for v in result.series.values())

    def test_unknown_strategy(self, factory):
        with pytest.raises(ModelError):
            run_budget_sweep(factory, [40], ["teleport"])

    def test_empty_budgets(self, factory):
        with pytest.raises(ModelError):
            run_budget_sweep(factory, [], ["ea"])

    def test_reproducible(self, factory):
        kwargs = dict(
            budgets=[40, 80], strategies=["ea"], scoring="mc",
            n_samples=200, seed=5,
        )
        a = run_budget_sweep(factory, **kwargs)
        b = run_budget_sweep(factory, **kwargs)
        assert a.series == b.series

    def test_dominates_helper(self, factory):
        result = run_budget_sweep(
            factory, budgets=[40, 80], strategies=["ea", "bias_2"],
            scoring="numeric",
        )
        assert result.dominates("ea", "bias_2", slack=1e-9)

    def test_best_strategy_at(self, factory):
        result = run_budget_sweep(
            factory, budgets=[40], strategies=["ea", "bias_2"],
            scoring="numeric",
        )
        assert result.best_strategy_at(40) == "ea"

    def test_as_rows(self, factory):
        result = run_budget_sweep(
            factory, budgets=[40], strategies=["ea"], scoring="numeric"
        )
        rows = result.as_rows()
        assert len(rows) == 1
        assert rows[0][0] == 40
