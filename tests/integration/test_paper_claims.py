"""Integration tests pinning the paper's headline claims.

Each test encodes one sentence of the paper's evaluation narrative;
together they are the repo's executable summary of §5's findings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import STRATEGIES, expected_job_latency
from repro.experiments import (
    fig2_experiment,
    motivation_example_1,
    motivation_example_2,
)
from repro.workloads import (
    heterogeneous_workload,
    homogeneity_workload,
    repetition_workload,
)


class TestMotivationClaims:
    def test_load_sensitive_beats_even_in_both_examples(self):
        """§1: "the second option is better" (both examples)."""
        assert motivation_example_1().load_sensitive_wins
        assert motivation_example_2().load_sensitive_wins


class TestScenario1Claims:
    def test_ea_optimal_and_bias_ordering(self):
        """§5.1.2: "optimal solution outperforms the comparisons" and
        "bias_1 produces slightly better performance than bias_2"
        (more bias = worse)."""
        result = fig2_experiment(
            "homo", case="a", budgets=(1000, 2500, 5000), n_tasks=50,
            scoring="numeric",
        )
        assert result.dominates("ea", "bias_1", slack=1e-9)
        assert result.dominates("ea", "bias_2", slack=1e-9)
        assert result.dominates("bias_1", "bias_2", slack=1e-9)

    def test_ea_robust_to_nonlinearity(self):
        """§5.1.2 finding 1: EA still wins for nonlinear λ(p) (cases
        e and f)."""
        for case in ("e", "f"):
            result = fig2_experiment(
                "homo", case=case, budgets=(1000, 3000, 5000), n_tasks=50,
                scoring="numeric",
            )
            assert result.dominates("ea", "bias_1", slack=1e-9)
            assert result.dominates("ea", "bias_2", slack=1e-9)

    def test_sensitive_market_saturates(self):
        """§5.1.2 finding 2: when λ is sensitive to price (case b),
        latency quickly saturates — extra budget changes little because
        the processing phase dominates."""
        result = fig2_experiment(
            "homo", case="b", budgets=(1000, 5000), n_tasks=50,
            scoring="numeric",
        )
        lo, hi = result.series["ea"]
        assert (lo - hi) / lo < 0.25  # shallow improvement

        # Contrast: the price-responsive case (a) improves much more.
        result_a = fig2_experiment(
            "homo", case="a", budgets=(1000, 5000), n_tasks=50,
            scoring="numeric",
        )
        lo_a, hi_a = result_a.series["ea"]
        assert (lo_a - hi_a) / lo_a > (lo - hi) / lo


class TestScenario2Claims:
    def test_ra_beats_both_baselines(self):
        """Fig. 2 (g)-(l): opt under te and re curves."""
        result = fig2_experiment(
            "repe", case="a", budgets=(1000, 2500, 5000), n_tasks=50,
            scoring="numeric",
        )
        slack = 0.005 * max(result.series["te"])
        assert result.dominates("ra", "te", slack=slack)
        assert result.dominates("ra", "re", slack=slack)


class TestScenario3Claims:
    def test_ha_competitive_everywhere_and_beats_te(self):
        """Fig. 2 (m)-(r): HA under te; re is near-optimal on this
        symmetric workload so HA must stay within a half percent."""
        result = fig2_experiment(
            "heter", case="a", budgets=(1000, 2500, 5000), n_tasks=50,
            scoring="numeric",
        )
        assert result.dominates("ha", "te", slack=0.005 * max(result.series["te"]))
        assert result.dominates("ha", "re", slack=0.01 * max(result.series["re"]))

    def test_ha_decisive_on_asymmetric_difficulty(self):
        """Fig. 5(c)'s regime: with strongly different processing
        rates, HA clearly beats the uniform heuristic and both
        baselines at every budget."""
        from repro import HTuningProblem, TaskSpec
        from repro.market import LinearPricing

        pricing = LinearPricing(0.002, 0.001)
        types = [("t1", 10, 1 / 90), ("t2", 15, 1 / 150), ("t3", 20, 1 / 240)]
        for budget in (600, 800, 1000):
            tasks = [
                TaskSpec(i, repetitions=r, pricing=pricing,
                         processing_rate=pr, type_name=nm)
                for i, (nm, r, pr) in enumerate(types)
            ]
            problem = HTuningProblem(tasks, budget)
            scores = {}
            for name in ("ha", "te", "re", "uniform"):
                alloc = STRATEGIES[name](problem, np.random.default_rng(0))
                scores[name] = expected_job_latency(problem, alloc)
            assert scores["ha"] == min(scores.values())


class TestApproximationStructure:
    def test_group_sum_upper_bounds_job_latency(self):
        """§4.3.1: the group-sum surrogate upper-bounds the true
        expected latency (on-hold phase)."""
        from repro.core import (
            repetition_algorithm,
            surrogate_onhold_objective,
        )

        problem = repetition_workload(2000, case="a", n_tasks=30)
        alloc = repetition_algorithm(problem)
        prices = {
            g.key: alloc.uniform_group_price(g) for g in problem.groups()
        }
        surrogate = surrogate_onhold_objective(problem, prices)
        true_latency = expected_job_latency(
            problem, alloc, include_processing=False
        )
        assert surrogate >= true_latency
