"""Failure-injection tests: errors must propagate cleanly, never hang
or corrupt state."""

from __future__ import annotations

import pytest

from repro import HTuningProblem, TaskSpec, Tuner
from repro.errors import ModelError, ReproError, SimulationError
from repro.market import (
    AggregateSimulator,
    AtomicTaskOrder,
    CallablePricing,
    CrowdPlatform,
    LinearPricing,
    MarketModel,
    TaskType,
)


class TestPayloadFailures:
    def test_raising_payload_propagates(self):
        class Bomb:
            def sample_answer(self, rng, accuracy):
                raise RuntimeError("boom")

        vote = TaskType("vote", processing_rate=2.0)
        sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=0)
        order = AtomicTaskOrder(
            task_type=vote, prices=(1,), atomic_task_id=0, payload=Bomb()
        )
        with pytest.raises(RuntimeError, match="boom"):
            sim.run_job([order])


class TestPricingFailures:
    def test_pricing_returning_garbage_is_rejected(self):
        bad = CallablePricing(lambda p: float("nan"), name="nan-curve")
        vote = TaskType("vote", processing_rate=2.0)
        market = MarketModel(bad)
        with pytest.raises(ModelError):
            market.onhold_rate(vote, 3)

    def test_pricing_raising_propagates_from_tuner(self):
        def explode(price):
            raise ValueError("pricing service down")

        bad = CallablePricing(explode, name="down")
        tasks = [
            TaskSpec(0, 2, bad, 2.0),
            TaskSpec(1, 3, bad, 2.0),
        ]
        problem = HTuningProblem(tasks, budget=50)
        with pytest.raises(ValueError, match="pricing service down"):
            Tuner(seed=0).tune(problem)


class TestPlatformStateAfterFailure:
    def test_budget_not_charged_twice_after_failure(self):
        vote = TaskType("vote", processing_rate=2.0)
        platform = CrowdPlatform(
            MarketModel(LinearPricing(1.0, 1.0)), budget=10, seed=0
        )
        from repro.market import PublishRequest

        with pytest.raises(SimulationError):
            platform.run_batch(
                [PublishRequest(task_type=vote, prices=[20])]
            )
        # The failed batch must not have consumed budget.
        assert platform.spent == 0
        # A feasible batch still works.
        platform.run_batch([PublishRequest(task_type=vote, prices=[5])])
        assert platform.spent == 5


class TestErrorHierarchy:
    def test_all_library_errors_catchable_as_repro_error(self):
        from repro.errors import (
            BudgetError,
            InferenceError,
            InfeasibleAllocationError,
            ModelError,
            PlanError,
            SimulationError,
        )

        for exc_type in (
            BudgetError,
            InferenceError,
            InfeasibleAllocationError,
            ModelError,
            PlanError,
            SimulationError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_value_errors_dual_typed(self):
        from repro.errors import BudgetError, ModelError, PlanError

        for exc_type in (BudgetError, ModelError, PlanError):
            assert issubclass(exc_type, ValueError)
