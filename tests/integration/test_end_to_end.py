"""Integration tests: full pipeline probe → calibrate → tune → execute."""

from __future__ import annotations

import numpy as np
import pytest

from repro import HTuningProblem, TaskSpec, Tuner
from repro.core import simulate_job_latency
from repro.crowddb import CrowdFilter, CrowdQueryEngine, CrowdSort
from repro.inference import RateProbe, fit_linearity
from repro.market import (
    CrowdPlatform,
    LinearPricing,
    MarketModel,
    TaskType,
)


class TestProbeCalibrateTune:
    """The paper's full workflow: infer market parameters with probes,
    fit the linearity hypothesis, and tune with the calibrated model."""

    def test_calibrated_tuning_close_to_oracle(self):
        true_model = LinearPricing(slope=2.0, intercept=1.0)
        market = MarketModel(true_model)
        vote = TaskType("vote", processing_rate=2.0)

        # 1. probe several price points
        probe = RateProbe(market, vote, slots=8, seed=0)
        prices = [2, 4, 6, 8]
        estimates = [probe.random_period(p, n_events=600) for p in prices]

        # 2. fit the linearity hypothesis
        fit = fit_linearity([float(p) for p in prices], estimates)
        assert fit.supports_hypothesis
        calibrated = fit.to_pricing_model()
        assert calibrated.slope == pytest.approx(2.0, rel=0.15)

        # 3. tune with the calibrated model vs the true model
        def build(pricing):
            tasks = [
                TaskSpec(i, 3, pricing, 2.0) for i in range(20)
            ]
            return HTuningProblem(tasks, budget=300)

        tuned_calibrated = Tuner(seed=0).tune(build(calibrated))
        tuned_oracle = Tuner(seed=0).tune(build(true_model))

        # 4. score both against the TRUE market
        oracle_problem = build(true_model)
        lat_cal = simulate_job_latency(
            oracle_problem, tuned_calibrated, n_samples=20000, rng=1
        )
        lat_orc = simulate_job_latency(
            oracle_problem, tuned_oracle, n_samples=20000, rng=1
        )
        assert lat_cal == pytest.approx(lat_orc, rel=0.05)


class TestTunedQueryBeatsNaive:
    """End-to-end: tuned allocation completes crowd queries faster (in
    expectation) than the equal-payment heuristic on a mixed workload."""

    def test_sort_with_heterogeneous_repetitions(self):
        vote = TaskType("vote", processing_rate=2.0, accuracy=1.0)
        pricing = {"vote": LinearPricing(1.0, 1.0)}
        market = MarketModel(LinearPricing(1.0, 1.0))

        def run(strategy, seed):
            platform = CrowdPlatform(market, seed=seed)
            engine = CrowdQueryEngine(
                platform, pricing, tuner=Tuner(strategy=strategy, seed=0)
            )
            op = CrowdSort(
                items=list("abcdef"),
                keys=[1.0, 1.02, 5.0, 9.0, 13.0, 20.0],
                task_type=vote,
                repetitions=3,
                strategy="next_votes",
            )
            outcome = engine.execute(op, budget=150)
            assert outcome.result == op.ground_truth()
            return outcome.latency

        trials = 60
        tuned = np.mean([run("auto", s) for s in range(trials)])
        naive = np.mean([run("uniform", s) for s in range(trials)])
        # Means over 60 trials: tuned should not be slower by more than
        # Monte-Carlo noise.
        assert tuned <= naive * 1.1

    def test_filter_answers_survive_tuning(self):
        vote = TaskType("vote", processing_rate=2.0, accuracy=0.95)
        market = MarketModel(LinearPricing(1.0, 1.0))
        platform = CrowdPlatform(market, seed=3)
        engine = CrowdQueryEngine(
            platform, {"vote": LinearPricing(1.0, 1.0)}, tuner=Tuner(seed=0)
        )
        truths = [True, False] * 5
        op = CrowdFilter(
            items=list(range(10)), truths=truths, task_type=vote,
            repetitions=5,
        )
        outcome = engine.execute(op, budget=200)
        expected = [i for i, t in enumerate(truths) if t]
        # With 95% accuracy and 5 votes per item, errors are rare.
        assert set(outcome.result) == set(expected)


class TestBudgetMonotonicity:
    """More budget must never hurt the tuned expected latency."""

    @pytest.mark.parametrize("strategy", ["ea", "ra", "ha"])
    def test_monotone(self, strategy):
        pricing = LinearPricing(1.0, 1.0)
        latencies = []
        for budget in (100, 200, 400, 800):
            tasks = [
                TaskSpec(i, 2 if i < 5 else 4, pricing, 2.0)
                for i in range(10)
            ]
            problem = HTuningProblem(tasks, budget)
            alloc = Tuner(strategy=strategy, seed=0).tune(problem)
            from repro.core import expected_job_latency

            latencies.append(expected_job_latency(problem, alloc))
        assert all(a >= b - 1e-9 for a, b in zip(latencies, latencies[1:]))
