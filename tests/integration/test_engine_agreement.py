"""Integration: the agent simulator aggregates to the paper's model.

The paper's modelling claim (§3.1) is that worker-level behaviour —
Poisson arrivals + utility-driven task choice — yields exponential
per-task acceptance with a price-dependent rate.  The aggregate engine
*assumes* that law; the agent engine *derives* it.  These tests verify
the two agree, which is this repo's substitute for the paper's AMT
validation (Fig. 3).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.market import (
    AgentSimulator,
    AggregateSimulator,
    AtomicTaskOrder,
    LinearPricing,
    MarketModel,
    PriceProportionalChoice,
    TaskType,
    TraceRecorder,
    WorkerPool,
)


@pytest.fixture
def vote_type():
    return TaskType("vote", processing_rate=2.0)


def single_task_orders(vote_type, price, n):
    return [
        AtomicTaskOrder(task_type=vote_type, prices=(price,), atomic_task_id=i)
        for i in range(n)
    ]


class TestSingleTaskAgreement:
    def test_one_open_task_acceptance_rate_is_arrival_rate(self, vote_type):
        """With one task open at a time and no leave option, the agent
        acceptance rate equals Λ, matching an aggregate market with
        λ_o = Λ at every price."""
        lam = 4.0
        pool = WorkerPool(arrival_rate=lam)
        sim = AgentSimulator(pool, seed=0)
        recorder = TraceRecorder()
        # One atomic task with many sequential repetitions keeps
        # exactly one repetition open at a time.
        order = AtomicTaskOrder(
            task_type=vote_type, prices=(3,) * 3000, atomic_task_id=0
        )
        sim.run_job([order], recorder=recorder)
        onholds = np.array([r.onhold_latency for r in recorder.records])
        assert onholds.mean() == pytest.approx(1 / lam, rel=0.05)
        # Exponentiality: variance = mean² for exponential.
        assert onholds.var() == pytest.approx(onholds.mean() ** 2, rel=0.15)

    def test_processing_phase_matches_model(self, vote_type):
        pool = WorkerPool(arrival_rate=10.0)
        sim = AgentSimulator(pool, seed=1)
        recorder = TraceRecorder()
        order = AtomicTaskOrder(
            task_type=vote_type, prices=(3,) * 3000, atomic_task_id=0
        )
        sim.run_job([order], recorder=recorder)
        procs = np.array([r.processing_latency for r in recorder.records])
        assert procs.mean() == pytest.approx(
            1 / vote_type.processing_rate, rel=0.05
        )


class TestMakespanAgreement:
    def test_parallel_batch_means_agree(self, vote_type):
        """The makespan of a parallel batch must agree between engines
        when the aggregate market is calibrated to the agent pool.

        Calibration: with n open tasks at equal price and no leave
        option, each task receives arrivals at rate Λ/n... but as tasks
        complete the board shrinks, so the effective per-task rate is
        not constant.  We therefore compare a *sequential* workload
        (one task, many repetitions — always exactly one open task),
        where the correspondence λ_o = Λ is exact.
        """
        lam = 5.0
        reps = 40
        pool = WorkerPool(arrival_rate=lam)
        # Aggregate market with constant λ_o = Λ (flat pricing).
        market = MarketModel(LinearPricing(slope=0.0, intercept=lam))

        agent_makespans = []
        aggregate_makespans = []
        for seed in range(80):
            order = AtomicTaskOrder(
                task_type=vote_type, prices=(2,) * reps, atomic_task_id=0
            )
            agent = AgentSimulator(WorkerPool(arrival_rate=lam), seed=seed)
            agent_makespans.append(agent.run_job([order]).makespan)
            aggregate = AggregateSimulator(market, seed=seed + 10_000)
            aggregate_makespans.append(aggregate.run_job([order]).makespan)
        # E[makespan] = reps·(1/Λ + 1/λ_p) for both engines.
        expected = reps * (1 / lam + 1 / vote_type.processing_rate)
        assert np.mean(agent_makespans) == pytest.approx(expected, rel=0.08)
        assert np.mean(aggregate_makespans) == pytest.approx(expected, rel=0.08)

    def test_price_preference_shifts_acceptance(self, vote_type):
        """Two open tasks at different prices: the pricier one is
        accepted first more often (the p(c) mechanism of §3.1.2)."""
        pool = WorkerPool(
            arrival_rate=5.0, choice_model=PriceProportionalChoice()
        )
        rich_first = 0
        trials = 300
        for seed in range(trials):
            sim = AgentSimulator(WorkerPool(arrival_rate=5.0), seed=seed)
            recorder = TraceRecorder()
            orders = [
                AtomicTaskOrder(task_type=vote_type, prices=(1,), atomic_task_id=0),
                AtomicTaskOrder(task_type=vote_type, prices=(9,), atomic_task_id=1),
            ]
            sim.run_job(orders, recorder=recorder)
            records = {r.atomic_task_id: r for r in recorder.records}
            if records[1].accepted_at < records[0].accepted_at:
                rich_first += 1
        assert rich_first / trials == pytest.approx(0.9, abs=0.05)
