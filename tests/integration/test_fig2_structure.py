"""Structural checks of the full Fig. 2 grid (numeric scoring, small n).

The benches run the paper-size grid with Monte-Carlo scoring; these
tests sweep all 18 (scenario, case) combinations at reduced size with
the *exact* numeric evaluator, so orderings are checked without noise
tolerances.
"""

from __future__ import annotations

import pytest

from repro.experiments import FIG2_STRATEGIES, fig2_experiment

CASES = "abcdef"
SCENARIOS = ("homo", "repe", "heter")

#: Surrogate-gap tolerance per (scenario, case): the optimal strategy
#: must stay within this relative distance of the best baseline at
#: every budget.  Zero-ish for Scenario I (EA is provably optimal);
#: small for RA/HA whose group-sum surrogate approximates the true
#: E[max] (largest under the concave log curve, case f).
def _tolerance(scenario: str, case: str) -> float:
    if scenario == "homo":
        return 1e-9
    if case in "ef":
        return 0.07
    return 0.01


@pytest.mark.parametrize("case", CASES)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_optimal_strategy_competitive(scenario, case):
    result = fig2_experiment(
        scenario,
        case=case,
        budgets=(1000, 3000, 5000),
        n_tasks=20,
        scoring="numeric",
    )
    opt = FIG2_STRATEGIES[scenario][0]
    tol = _tolerance(scenario, case)
    for baseline in result.series:
        if baseline == opt:
            continue
        slack = tol * max(result.series[baseline])
        assert result.dominates(opt, baseline, slack=slack), (
            f"{opt} loses to {baseline} in {scenario}({case}): "
            f"{result.series[opt]} vs {result.series[baseline]}"
        )


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_latency_decreases_with_budget(scenario):
    result = fig2_experiment(
        scenario,
        case="a",
        budgets=(1000, 2000, 3000, 4000, 5000),
        n_tasks=20,
        scoring="numeric",
    )
    opt = FIG2_STRATEGIES[scenario][0]
    curve = result.series[opt]
    assert all(a >= b - 1e-9 for a, b in zip(curve, curve[1:]))


def test_price_sensitive_case_saturates_fastest():
    """Case (b) (λ = 10p+1) must show the smallest relative improvement
    over the sweep; case (a) (λ = 1+p) a much larger one."""
    improvements = {}
    for case in ("a", "b", "c"):
        result = fig2_experiment(
            "homo", case=case, budgets=(1000, 5000), n_tasks=20,
            scoring="numeric",
        )
        lo, hi = result.series["ea"]
        improvements[case] = (lo - hi) / lo
    assert improvements["a"] > improvements["b"]
    assert improvements["a"] > improvements["c"]
