"""Executable appendix: the paper's lemmas and theorem, verified
numerically over parameter sweeps.

Each test is one formal statement from §4 / the appendix; together
they certify that the implementation's probability layer satisfies the
exact properties the algorithms' optimality rests on.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro import Allocation, HTuningProblem, TaskSpec
from repro.core import expected_job_latency
from repro.market import LinearPricing
from repro.stats import (
    Erlang,
    Exponential,
    expected_max_exponential,
    hypoexponential_cdf,
)


class TestLemma1:
    """Lemma 1: two identical 1-repetition tasks, budget B — the even
    split minimizes E[max of the two on-hold phases]."""

    @pytest.mark.parametrize("budget", [4, 6, 10, 20, 31])
    @pytest.mark.parametrize("k", [0.5, 1.0, 3.0])
    def test_even_split_minimizes(self, budget, k):
        # λ(x) = k·x (the lemma's proof uses a zero-intercept curve).
        def latency(x: int) -> float:
            return expected_max_exponential([k * x, k * (budget - x)])

        values = {x: latency(x) for x in range(1, budget)}
        best = min(values, key=values.get)
        assert best in (budget // 2, (budget + 1) // 2)

    def test_closed_form(self):
        # E[max] = 1/λ1 + 1/λ2 − 1/(λ1+λ2), the expression in the proof.
        a, b = 2.0, 3.0
        assert expected_max_exponential([a, b]) == pytest.approx(
            1 / a + 1 / b - 1 / (a + b)
        )


class TestLemma2:
    """Lemma 2: one task, m repetitions, budget B — the even
    per-repetition split minimizes the expected (sequential) latency.

    E[L] = Σ 1/λ(p_i); by AM–HM the sum is minimized at equal p_i."""

    @pytest.mark.parametrize("m,budget", [(2, 8), (3, 9), (3, 12), (4, 16)])
    def test_even_split_minimizes_over_all_compositions(self, m, budget):
        k = 1.0  # λ(p) = p

        def latency(prices):
            return sum(1.0 / (k * p) for p in prices)

        best_value = np.inf
        best = None
        for combo in itertools.product(range(1, budget), repeat=m):
            if sum(combo) != budget:
                continue
            value = latency(combo)
            if value < best_value:
                best_value = value
                best = combo
        assert best is not None
        assert max(best) - min(best) <= 1  # evenest composition wins


class TestLemma3:
    """Lemma 3: a task run k sequential repetitions with Exp(λ) phases
    has Erlang(k, λ) latency."""

    @pytest.mark.parametrize("k,lam", [(2, 1.0), (4, 2.5), (6, 0.7)])
    def test_sum_matches_erlang(self, k, lam, rng):
        draws = rng.exponential(1 / lam, size=(100_000, k)).sum(axis=1)
        erlang = Erlang(k, lam)
        for q in (0.1, 0.5, 0.9):
            emp = float(np.quantile(draws, q))
            assert erlang.cdf(emp) == pytest.approx(q, abs=0.01)

    def test_phase_type_agrees_with_erlang(self):
        t = np.linspace(0, 20, 50)
        np.testing.assert_allclose(
            hypoexponential_cdf([1.3] * 5, t),
            np.asarray(Erlang(5, 1.3).cdf(t)),
            atol=1e-10,
        )


class TestTheorem1:
    """Theorem 1: identical tasks × identical repetitions — the fully
    even allocation minimizes the expected job latency.  Verified by
    exhaustive search over all integer allocations of small
    instances."""

    def test_exhaustive_two_tasks_two_reps(self):
        pricing = LinearPricing(1.0, 0.0)
        tasks = [TaskSpec(i, 2, pricing, 2.0) for i in range(2)]
        budget = 12
        problem = HTuningProblem(tasks, budget)

        best_value = np.inf
        best = None
        # All (p00, p01, p10, p11) with sum == budget, each >= 1.
        for combo in itertools.product(range(1, budget), repeat=4):
            if sum(combo) != budget:
                continue
            alloc = Allocation(
                {0: [combo[0], combo[1]], 1: [combo[2], combo[3]]}
            )
            value = expected_job_latency(
                problem, alloc, include_processing=False, grid_points=512
            )
            if value < best_value - 1e-12:
                best_value = value
                best = combo
        assert best == (3, 3, 3, 3)

    def test_even_beats_random_allocations(self, rng):
        pricing = LinearPricing(2.0, 1.0)
        n, reps, budget = 4, 3, 48
        tasks = [TaskSpec(i, reps, pricing, 2.0) for i in range(n)]
        problem = HTuningProblem(tasks, budget)
        even = Allocation.uniform(problem, budget // (n * reps))
        even_value = expected_job_latency(
            problem, even, include_processing=False
        )
        for _ in range(25):
            # Random composition of the budget over the 12 repetitions.
            cuts = np.sort(
                rng.choice(np.arange(1, budget), size=n * reps - 1,
                           replace=False)
            )
            parts = np.diff(np.concatenate([[0], cuts, [budget]]))
            prices = {
                t.task_id: [
                    int(parts[t.task_id * reps + r]) for r in range(reps)
                ]
                for t in tasks
            }
            alloc = Allocation(prices)
            value = expected_job_latency(
                problem, alloc, include_processing=False
            )
            assert even_value <= value + 1e-9
