"""Domain-level fault mode: worker abandonment in the agent market.

``market.abandon`` does not raise — an injected abandonment makes the
arriving worker walk away from the task they just chose (the task stays
open, no processing time is drawn, no worker id is consumed).  The
contract under test: the scalar event loop and the lock-step
``agent-batch`` engine consult the *same* per-replication acceptance
counters, so an abandonment plan perturbs both engines identically.
"""

from __future__ import annotations

from repro.api import RunConfig, Session

from tiny import tiny_spec

_PLAN = {"rules": [{"site": "market.abandon", "rate": 0.3}], "seed": 7}


def _fig3_payload(engine, faults=None, replications=3):
    config = RunConfig(engine=engine, faults=faults,
                       replications=replications)
    return Session(config).run(tiny_spec("fig3")).payload


def test_abandonment_is_engine_identical():
    scalar = _fig3_payload("scalar", faults=_PLAN)
    lockstep = _fig3_payload("agent-batch", faults=_PLAN)
    assert scalar == lockstep


def test_abandonment_actually_perturbs_the_market():
    clean = _fig3_payload("scalar")
    faulted = _fig3_payload("scalar", faults=_PLAN)
    assert clean != faulted


def test_abandonment_is_seed_deterministic():
    first = _fig3_payload("agent-batch", faults=_PLAN)
    again = _fig3_payload("agent-batch", faults=_PLAN)
    assert first == again
    other_seed = dict(_PLAN, seed=8)
    assert _fig3_payload("agent-batch", faults=other_seed) != first


def test_targeted_replication_abandonment_is_engine_identical():
    plan = {
        "rules": [
            {"site": "market.abandon", "at": [0, 2], "replication": 1}
        ]
    }
    scalar = _fig3_payload("scalar", faults=plan)
    lockstep = _fig3_payload("agent-batch", faults=plan)
    assert scalar == lockstep
    assert scalar != _fig3_payload("scalar")
