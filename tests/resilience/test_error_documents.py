"""Structured error documents: the experiment × fault-site grid.

The core robustness contract: *any* registered experiment failing at
*any* instrumented site yields an :class:`ErrorDocument` that (a)
round-trips through JSON and (b) replays to the same failure from the
document alone.  ``run.start`` is reached by construction on every
experiment; the other raising sites skip the cells an experiment's
execution path genuinely never visits.
"""

from __future__ import annotations

import json

import pytest

from repro.api import RunConfig, Session, make_spec
from repro.api.spec import available_experiments
from repro.errors import ReproError, error_code
from repro.resilience import ErrorDocument
from repro.resilience.faults import FAULT_SITES

from tiny import TINY_PARAMS

#: the sites that raise (market.abandon perturbs instead; see
#: test_abandonment.py).
RAISING_SITES = tuple(s for s in FAULT_SITES if s != "market.abandon")


def test_every_experiment_has_tiny_params():
    assert set(TINY_PARAMS) == set(available_experiments())


def _fault_config(site):
    return RunConfig(faults={"rules": [{"site": site, "at": [0]}]})


@pytest.mark.parametrize("site", RAISING_SITES)
@pytest.mark.parametrize("experiment", sorted(TINY_PARAMS))
def test_grid_failure_yields_replayable_document(experiment, site):
    spec = make_spec(experiment, **TINY_PARAMS[experiment])
    config = _fault_config(site)
    try:
        Session(config).run(spec)
    except ReproError as exc:
        doc = exc.error_document
        code = error_code(exc)
    else:
        if site == "run.start":
            pytest.fail("run.start must be reached by every experiment")
        pytest.skip(f"{experiment} never reaches {site}")

    assert isinstance(doc, ErrorDocument)
    assert doc.code == "fault-injected" == code
    assert doc.site == site
    assert doc.occurrence == 0
    assert doc.experiment == experiment
    assert doc.spec == spec.to_dict()
    assert doc.config == config.to_dict()
    assert doc.fingerprint

    # (a) lossless JSON round-trip.
    assert ErrorDocument.from_json(doc.to_json()) == doc
    assert json.loads(doc.to_json())["code"] == "fault-injected"

    # (b) the document alone reproduces the identical failure.
    replayed = ErrorDocument.from_json(doc.to_json()).replay()
    assert replayed == doc


def test_document_for_unserializable_seed_omits_spec(fig2_spec):
    import numpy as np

    config = RunConfig(
        seed=np.random.default_rng(0),
        faults={"rules": [{"site": "run.start", "at": [0]}]},
    )
    with pytest.raises(ReproError) as exc:
        Session(config).run(fig2_spec)
    doc = exc.value.error_document
    assert doc.code == "fault-injected"
    assert doc.config is None  # generator seeds cannot serialize
    assert doc.fingerprint is None
    with pytest.raises(ReproError, match="replay"):
        doc.replay()


def test_capture_of_plain_exception():
    doc = ErrorDocument.capture(ValueError("boom"))
    assert doc.code == "error"
    assert doc.error == "ValueError"
    assert doc.message == "boom"
    assert doc.spec is None and doc.config is None


def test_from_dict_rejects_unknown_keys():
    from repro.errors import ModelError

    with pytest.raises(ModelError, match="unknown ErrorDocument keys"):
        ErrorDocument.from_dict({"code": "x", "error": "E", "message": "m",
                                 "bogus": 1})


def test_registry_failures_carry_stable_codes():
    from repro.errors import RegistryError
    from repro.perf.engine import get_engine

    with pytest.raises(RegistryError) as exc:
        get_engine("warp-drive")
    assert error_code(exc.value) == "registry-lookup"
    # the message names the available entries
    assert "scalar" in str(exc.value)
