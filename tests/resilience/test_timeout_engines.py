"""Cooperative timeouts inside the engines and comparators.

``TimeoutPolicy`` is checked at the same named sites faults inject at,
so coverage must reach the sites that matter under batching: the
lock-step ``agent-batch`` replication fan-out and the batched deadline
comparator — not just ``run.start`` (covered in ``test_policies.py``).
"""

from __future__ import annotations

import pytest

from repro import TaskSpec
from repro.api import RunConfig, Session
from repro.errors import RunTimeoutError
from repro.market import AgentSimulator, LinearPricing, TaskType, WorkerPool
from repro.market.simulator import AtomicTaskOrder
from repro.perf.engine import resolve_engine
from repro.resilience.faults import runtime_scope
from repro.stats.rng import replication_seeds

from tiny import tiny_spec


def _orders(n=4):
    tt = TaskType(name="t", processing_rate=2.0, accuracy=0.9)
    return [
        AtomicTaskOrder(task_type=tt, prices=(2, 3), atomic_task_id=i)
        for i in range(n)
    ]


@pytest.mark.parametrize("engine", ["scalar", "agent-batch"])
def test_deadline_fires_inside_the_replication_fanout(engine):
    # An expired deadline interrupts the ensemble at a replication
    # boundary — the site where partial state discards cleanly — on the
    # sequential and lock-step engines alike.
    sim = AgentSimulator(WorkerPool(arrival_rate=5.0), seed=3)
    with runtime_scope(None, timeout_seconds=1e-9):
        with pytest.raises(RunTimeoutError) as exc:
            resolve_engine(engine).run_replications(
                sim, _orders(), replication_seeds(1, 3), None, 0.0
            )
    assert exc.value.site == "market.replication"
    assert exc.value.seconds == 1e-9


def test_deadline_fires_inside_the_batched_comparator():
    from repro.core.deadline import min_cost_for_deadline

    tasks = [
        TaskSpec(
            i,
            repetitions=2,
            pricing=LinearPricing(slope=1.0, intercept=1.0),
            processing_rate=2.0,
        )
        for i in range(3)
    ]
    with runtime_scope(None, timeout_seconds=1e-9):
        with pytest.raises(RunTimeoutError) as exc:
            min_cost_for_deadline(tasks, deadline=5.0)
    assert exc.value.site == "comparator.min_cost"


def test_agent_batch_session_timeout_surfaces_as_timeout():
    # Through the full Session path with the lock-step engine: the
    # cooperative deadline must surface as RunTimeoutError (site
    # recorded), never wrapped into a per-replication SimulationError.
    config = RunConfig(engine="agent-batch", timeout=1e-12)
    with pytest.raises(RunTimeoutError) as exc:
        Session(config).run(tiny_spec("fig3"))
    assert exc.value.error_document.code == "timeout"
    assert exc.value.error_document.site is not None


def test_timeout_document_replays_to_the_same_failure():
    # The captured document embeds the config (and so the policy): a
    # 1e-12 budget deterministically re-times-out on replay, and the
    # replayed document matches the original byte-for-byte.
    config = RunConfig(timeout=1e-12)
    with pytest.raises(RunTimeoutError) as exc:
        Session(config).run(tiny_spec("fig3"))
    document = exc.value.error_document
    replayed = document.replay()
    assert replayed == document
    assert replayed.to_json() == document.to_json()


def test_batched_comparator_timeout_through_session():
    # The deadline-sweep experiment drives the batched comparator; an
    # expired budget is reported at whichever instrumented site the
    # run reaches first, and the document still addresses the run.
    config = RunConfig(comparator="batched", timeout=1e-12)
    with pytest.raises(RunTimeoutError) as exc:
        Session(config).run(tiny_spec("deadline-sweep"))
    document = exc.value.error_document
    assert document.code == "timeout"
    assert document.config["timeout"] == {"seconds": 1e-12}
    assert document.spec["experiment"] == "deadline-sweep"