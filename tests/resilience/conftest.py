"""Shared fixtures for the resilience suite (tiny specs live in tiny.py)."""

from __future__ import annotations

import pytest

from repro.api import RunConfig, Session

from tiny import tiny_spec


@pytest.fixture
def fig2_spec():
    return tiny_spec("fig2")


@pytest.fixture
def fig3_spec():
    return tiny_spec("fig3")


@pytest.fixture
def run_tiny():
    """Run one tiny experiment under *config* and return the result."""

    def _run(name, config=None):
        return Session(config or RunConfig()).run(tiny_spec(name))

    return _run
