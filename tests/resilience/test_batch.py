"""``Session.run_many`` graceful degradation: the ``BatchReport``."""

from __future__ import annotations

import json

import pytest

from repro.api import RunConfig, Session
from repro.errors import FaultInjectedError
from repro.resilience import BatchReport, ErrorDocument

from tiny import tiny_spec


def _specs():
    return [tiny_spec("fig2"), tiny_spec("fig3"), tiny_spec("fig4")]


def test_clean_batch_keeps_list_contract():
    report = Session(RunConfig()).run_many(_specs())
    assert isinstance(report, BatchReport)
    assert report.ok
    assert len(report) == 3
    # iterating yields completed RunResults in submission order —
    # the pre-resilience `[r.payload for r in run_many(...)]` shape.
    payloads = [r.payload for r in report]
    assert len(payloads) == 3
    assert [o.status for o in report.outcomes] == ["succeeded"] * 3


def test_failing_spec_files_an_error_document_instead_of_raising():
    # fig3 reaches market.replication; fig2/fig4 budget paths do not
    # replicate the market, so only fig3 fails.
    config = RunConfig(
        faults={"rules": [{"site": "market.replication", "at": [0]}]}
    )
    report = Session(config).run_many(_specs())
    assert not report.ok
    statuses = {o.spec.name: o.status for o in report.outcomes}
    assert statuses["fig3"] == "failed"
    assert statuses["fig2"] == "succeeded"
    failed = report.failed[0]
    assert isinstance(failed.error, ErrorDocument)
    assert failed.error.code == "fault-injected"
    assert failed.error.site == "market.replication"
    assert failed.result is None
    # completed results still iterate; the failure is skipped
    assert len(list(report)) == 2


def test_fail_fast_raises_on_first_failure():
    config = RunConfig(
        faults={"rules": [{"site": "run.start", "at": [0]}]}
    )
    with pytest.raises(FaultInjectedError):
        Session(config).run_many([tiny_spec("fig2")], fail_fast=True)


def test_degraded_outcome_is_counted_separately():
    config = RunConfig(
        engine="batch",
        faults={"rules": [{"site": "engine.sample", "engine": "batch",
                           "rate": 1.0}]},
        retry={"attempts": 1, "fallback_engines": ["scalar"]},
    )
    report = Session(config).run_many([tiny_spec("fig2")])
    assert report.ok
    assert [o.status for o in report.outcomes] == ["degraded"]
    assert len(report.degraded) == 1
    assert report.results[0].execution.degraded


def test_report_serializes_with_counts():
    config = RunConfig(
        faults={"rules": [{"site": "run.start", "at": [0]}]}
    )
    # occurrence counters reset per run attempt, so every spec's first
    # run.start check fires: the whole batch fails.
    report = Session(config).run_many([tiny_spec("fig2"), tiny_spec("fig3")])
    doc = json.loads(report.to_json())
    assert doc["total"] == 2
    assert doc["failed"] == 2
    assert doc["succeeded"] == 0
    assert all(o["error"]["code"] == "fault-injected"
               for o in doc["outcomes"])


def test_outcome_dict_hides_restored_flag():
    report = Session(RunConfig()).run_many([tiny_spec("fig2")])
    assert "restored" not in report.to_dict()["outcomes"][0]
