"""CLI failure paths: distinct exit codes + structured ``--json`` errors."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXECUTION_ERROR_EXIT, USER_ERROR_EXIT, main
from repro.resilience import ErrorDocument

_FAULT = '{"rules": [{"site": "run.start", "at": [0]}]}'


def _run(argv):
    with pytest.raises(SystemExit) as exc:
        main(argv)
    return exc.value.code


def test_unknown_experiment_is_a_user_error(capsys):
    assert _run(["run", "warp-drive"]) == USER_ERROR_EXIT
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "fig2" in err  # names the available entries


def test_bad_param_is_a_user_error(capsys):
    assert _run(["run", "fig3", "--param", "nonsense"]) == USER_ERROR_EXIT
    assert "error:" in capsys.readouterr().err


def test_unknown_param_is_a_user_error(capsys):
    assert _run(["run", "fig3", "--param", "bogus=1"]) == USER_ERROR_EXIT


def test_unknown_fault_plan_name_is_a_user_error(capsys):
    code = _run(["run", "fig3", "--param", "n_arrivals=3",
                 "--faults", "no-such-plan"])
    assert code == USER_ERROR_EXIT
    assert "unknown fault plan" in capsys.readouterr().err


def test_execution_failure_exits_three(capsys):
    code = _run(["run", "fig3", "--param", "n_arrivals=3",
                 "--faults", _FAULT])
    assert code == EXECUTION_ERROR_EXIT
    assert "injected fault" in capsys.readouterr().err


def test_json_failure_emits_error_document(capsys):
    code = _run(["run", "fig3", "--param", "n_arrivals=3",
                 "--faults", _FAULT, "--json"])
    assert code == EXECUTION_ERROR_EXIT
    payload = json.loads(capsys.readouterr().out)
    assert payload["code"] == "fault-injected"
    assert payload["site"] == "run.start"
    assert payload["experiment"] == "fig3"
    # the printed document is a full ErrorDocument: it round-trips and
    # carries the spec/config needed to replay the failure offline.
    doc = ErrorDocument.from_dict(payload)
    assert doc.spec["experiment"] == "fig3"
    assert doc.config["faults"]["rules"][0]["site"] == "run.start"
    assert doc.fingerprint


def test_json_user_error_emits_error_document(capsys):
    code = _run(["run", "warp-drive", "--json"])
    assert code == USER_ERROR_EXIT
    payload = json.loads(capsys.readouterr().out)
    assert payload["code"] == "registry-lookup"
    assert payload["spec"] is None  # failed before a spec existed


def test_successful_run_still_exits_zero(capsys):
    assert main(["run", "fig3", "--param", "n_arrivals=3"]) in (0, None)
    assert "fig3" in capsys.readouterr().out
