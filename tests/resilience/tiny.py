"""Tiny per-experiment parameter sets for the resilience suite.

``TINY_PARAMS`` gives every registered experiment a parameter set small
enough that a fault-injection grid over all (experiment, site) cells
stays tier-1 cheap.  The completeness guard in
``test_error_documents.py`` fails when a new experiment registers
without a tiny entry, so the grid can never silently lose coverage.
"""

from __future__ import annotations

from repro.api import make_spec

#: experiment name -> smallest sensible parameter overrides.
TINY_PARAMS = {
    "table1": {},
    "fig2": {"n_tasks": 4, "n_samples": 20, "budgets": [800]},
    "fig3": {"n_arrivals": 3},
    "fig4": {"prices": [5, 8], "repetitions": 2},
    "fig5ab": {
        "vote_counts": [4],
        "prices": [5],
        "repetitions": 2,
        "n_tasks": 2,
    },
    "fig5c": {"budgets": [600], "n_samples": 20},
    "deadline-frontier": {"n_tasks": 5, "n_deadlines": 2, "max_price": 8},
    "budget-sweep": {
        "n_tasks": 4,
        "budgets": [600],
        "strategies": ["ra"],
        "n_samples": 20,
    },
    "deadline-sweep": {"n_tasks": 4, "deadlines": [5.0], "max_price": 8},
}


def tiny_spec(name):
    return make_spec(name, **TINY_PARAMS[name])
