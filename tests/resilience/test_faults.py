"""FaultRule / FaultPlan values, registry, and runtime semantics."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    FaultInjectedError,
    ModelError,
    RegistryError,
    RunTimeoutError,
)
from repro.resilience import FaultPlan, FaultRule
from repro.resilience.faults import (
    FAULT_SITES,
    available_fault_plans,
    get_fault_plan,
    register_fault_plan,
    resolve_fault_plan,
    runtime_scope,
    site_check,
)


# ---------------------------------------------------------------------------
# value validation
# ---------------------------------------------------------------------------


def test_rule_rejects_unknown_site():
    with pytest.raises(ModelError, match="unknown fault site"):
        FaultRule(site="nope", at=(0,))


def test_rule_needs_a_trigger():
    with pytest.raises(ModelError, match="trigger"):
        FaultRule(site="run.start")


def test_rule_rejects_negative_occurrence():
    with pytest.raises(ModelError):
        FaultRule(site="run.start", at=(-1,))


def test_rule_rejects_out_of_range_rate():
    with pytest.raises(ModelError):
        FaultRule(site="run.start", rate=1.5)


def test_rule_from_dict_rejects_unknown_keys():
    with pytest.raises(ModelError, match="unknown FaultRule keys"):
        FaultRule.from_dict({"site": "run.start", "at": [0], "bogus": 1})


def test_plan_from_dict_rejects_unknown_keys():
    with pytest.raises(ModelError, match="unknown FaultPlan keys"):
        FaultPlan.from_dict({"rules": [], "extra": True})


def test_plan_coerces_rule_dicts():
    plan = FaultPlan(rules=({"site": "engine.sample", "at": [1]},))
    assert isinstance(plan.rules[0], FaultRule)
    assert plan.rules[0].at == (1,)


# ---------------------------------------------------------------------------
# serialization round-trips (property-based)
# ---------------------------------------------------------------------------

#: (at, rate) pairs that always carry at least one trigger — a rule
#: with neither is invalid by construction, so guarantee the invariant
#: in the strategy instead of filtering after __post_init__ raises.
_triggers = st.one_of(
    st.tuples(
        st.lists(st.integers(0, 50), min_size=1, max_size=4).map(tuple),
        st.just(0.0),
    ),
    st.tuples(
        st.lists(st.integers(0, 50), max_size=4).map(tuple),
        st.floats(0.001, 1.0, allow_nan=False),
    ),
)

_rules = st.builds(
    lambda site, trigger, replication, engine, comparator, on_attempts,
    detail: FaultRule(
        site=site,
        at=trigger[0],
        rate=trigger[1],
        replication=replication,
        engine=engine,
        comparator=comparator,
        on_attempts=on_attempts,
        detail=detail,
    ),
    site=st.sampled_from(FAULT_SITES),
    trigger=_triggers,
    replication=st.none() | st.integers(0, 10),
    engine=st.none() | st.sampled_from(["scalar", "batch", "agent-batch"]),
    comparator=st.none() | st.sampled_from(["batched", "reference"]),
    on_attempts=st.none() | st.lists(st.integers(0, 5), max_size=3).map(tuple),
    detail=st.text(max_size=20),
)


@settings(max_examples=50, deadline=None)
@given(rule=_rules)
def test_rule_roundtrips_through_json(rule):
    payload = json.loads(json.dumps(rule.to_dict()))
    assert FaultRule.from_dict(payload) == rule


@settings(max_examples=25, deadline=None)
@given(rules=st.lists(_rules, max_size=4), seed=st.integers(0, 2**31))
def test_plan_roundtrips_through_json(rules, seed):
    plan = FaultPlan(rules=tuple(rules), seed=seed)
    assert FaultPlan.from_dict(json.loads(plan.to_json())) == plan


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def test_registry_roundtrip_and_unknown_name():
    plan = FaultPlan(rules=({"site": "run.start", "at": [0]},), seed=3)
    register_fault_plan("test-faults-registry", plan, replace=True)
    try:
        assert get_fault_plan("test-faults-registry") is plan
        assert "test-faults-registry" in available_fault_plans()
        assert resolve_fault_plan("test-faults-registry") is plan
        with pytest.raises(RegistryError, match="test-faults-registry"):
            get_fault_plan("no-such-plan")
    finally:
        from repro.resilience.faults import _PLANS

        _PLANS.pop("test-faults-registry", None)


def test_resolve_passthrough_and_rejection():
    assert resolve_fault_plan(None) is None
    plan = FaultPlan(seed=1)
    assert resolve_fault_plan(plan) is plan
    inline = resolve_fault_plan({"rules": [{"site": "run.start", "at": [0]}]})
    assert isinstance(inline, FaultPlan)
    with pytest.raises(ModelError):
        resolve_fault_plan(42)


def test_registry_error_is_a_model_error_and_lookup_error():
    with pytest.raises(ModelError):
        get_fault_plan("nope")
    with pytest.raises(LookupError):
        get_fault_plan("nope")


# ---------------------------------------------------------------------------
# runtime scope + deterministic firing
# ---------------------------------------------------------------------------


def test_site_check_is_noop_without_scope():
    site_check("run.start")  # must not raise


def test_occurrence_indexed_firing():
    plan = FaultPlan(rules=(FaultRule(site="engine.sample", at=(2,)),))
    state = plan.activate()
    with runtime_scope(state):
        site_check("engine.sample")  # occurrence 0
        site_check("engine.sample")  # occurrence 1
        with pytest.raises(FaultInjectedError) as exc:
            site_check("engine.sample")  # occurrence 2 fires
    assert exc.value.site == "engine.sample"
    assert exc.value.occurrence == 2
    site_check("engine.sample")  # scope restored: no-op again


def test_context_filters_gate_firing():
    plan = FaultPlan(
        rules=(FaultRule(site="engine.sample", at=(0,), engine="batch"),)
    )
    with runtime_scope(plan.activate()):
        site_check("engine.sample", engine="scalar")  # filtered out
        with pytest.raises(FaultInjectedError):
            site_check("engine.sample", engine="batch")


def test_replication_counters_are_independent():
    plan = FaultPlan(
        rules=(FaultRule(site="market.replication", at=(1,)),)
    )
    with runtime_scope(plan.activate()):
        # occurrence 0 of each replication: no fire either way.
        site_check("market.replication", replication=0)
        site_check("market.replication", replication=1)
        # occurrence 1, replication 1 fires — replication 0 untouched.
        with pytest.raises(FaultInjectedError) as exc:
            site_check("market.replication", replication=1)
    assert exc.value.replication == 1


def test_rate_firing_is_seed_deterministic():
    def fire_pattern(seed, n=64):
        plan = FaultPlan(
            rules=(FaultRule(site="engine.sample", rate=0.3),), seed=seed
        )
        pattern = []
        with runtime_scope(plan.activate()):
            for _ in range(n):
                try:
                    site_check("engine.sample")
                    pattern.append(False)
                except FaultInjectedError:
                    pattern.append(True)
        return pattern

    first = fire_pattern(seed=7)
    assert fire_pattern(seed=7) == first
    assert any(first) and not all(first)
    assert fire_pattern(seed=8) != first


def test_on_attempts_filter():
    plan = FaultPlan(
        rules=(FaultRule(site="run.start", at=(0,), on_attempts=(0,)),)
    )
    with runtime_scope(plan.activate(attempt=0)):
        with pytest.raises(FaultInjectedError):
            site_check("run.start")
    with runtime_scope(plan.activate(attempt=1)):
        site_check("run.start")  # rule restricted to attempt 0


def test_timeout_deadline_raises_at_next_site():
    with runtime_scope(None, timeout_seconds=1e-12):
        with pytest.raises(RunTimeoutError) as exc:
            site_check("run.start")
    assert exc.value.site == "run.start"


def test_scopes_nest_and_restore():
    outer = FaultPlan(rules=(FaultRule(site="run.start", at=(0,)),))
    inner = FaultPlan(rules=(FaultRule(site="engine.sample", at=(0,)),))
    with runtime_scope(outer.activate()):
        with runtime_scope(inner.activate()):
            site_check("run.start")  # outer plan shadowed
            with pytest.raises(FaultInjectedError):
                site_check("engine.sample")
        with pytest.raises(FaultInjectedError):
            site_check("run.start")  # outer restored
