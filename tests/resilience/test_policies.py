"""Retry, fallback, and timeout policies on the resilient executor."""

from __future__ import annotations

import pytest

from repro.api import RunConfig, Session
from repro.errors import (
    FaultInjectedError,
    ModelError,
    RunTimeoutError,
)
from repro.resilience import RetryPolicy, TimeoutPolicy
from repro.resilience.policy import ExecutionRecord


# ---------------------------------------------------------------------------
# policy values
# ---------------------------------------------------------------------------


def test_retry_policy_validates():
    with pytest.raises(ModelError):
        RetryPolicy(attempts=0)
    with pytest.raises(ModelError):
        RetryPolicy(backoff=-1.0)


def test_backoff_is_deterministic_and_capped():
    policy = RetryPolicy(attempts=5, backoff=0.5, backoff_cap=1.0)
    assert policy.delay(0) == 0.5
    assert policy.delay(1) == 1.0
    assert policy.delay(4) == 1.0  # capped, not 8.0
    assert RetryPolicy(attempts=3).delay(2) == 0.0  # no backoff configured


def test_policy_roundtrips():
    policy = RetryPolicy(attempts=3, backoff=0.1, fallback_engines=("scalar",))
    assert RetryPolicy.from_dict(policy.to_dict()) == policy
    timeout = TimeoutPolicy(seconds=2.5)
    assert TimeoutPolicy.from_dict(timeout.to_dict()) == timeout
    with pytest.raises(ModelError):
        TimeoutPolicy(seconds=0.0)


def test_config_normalizes_policy_dicts():
    config = RunConfig(retry={"attempts": 2}, timeout=1.5)
    assert isinstance(config.retry, RetryPolicy)
    assert config.retry.attempts == 2
    assert isinstance(config.timeout, TimeoutPolicy)
    assert config.timeout.seconds == 1.5
    # emitted only when set — and round-trips
    assert "retry" in config.to_dict()
    assert RunConfig.from_dict(config.to_dict()).retry == config.retry
    assert "retry" not in RunConfig().to_dict()


# ---------------------------------------------------------------------------
# executor behavior
# ---------------------------------------------------------------------------


def test_retry_recovers_from_attempt_zero_fault(fig2_spec, run_tiny):
    baseline = run_tiny("fig2")
    config = RunConfig(
        faults={
            "rules": [
                {"site": "engine.sample", "at": [0], "on_attempts": [0]}
            ]
        },
        retry={"attempts": 2},
    )
    result = Session(config).run(fig2_spec)
    assert result.payload == baseline.payload
    assert not result.degraded
    assert result.execution is not None
    [attempt] = result.execution.attempts
    assert attempt["code"] == "fault-injected"
    assert attempt["site"] == "engine.sample"


def test_retries_exhaust_then_raise_with_document(fig2_spec):
    config = RunConfig(
        faults={"rules": [{"site": "run.start", "at": [0]}]},
        retry={"attempts": 3},
    )
    with pytest.raises(FaultInjectedError) as exc:
        Session(config).run(fig2_spec)
    assert exc.value.error_document.code == "fault-injected"


def test_fallback_chain_degrades_to_reference_engine(fig2_spec, run_tiny):
    config = RunConfig(
        engine="batch",
        faults={"rules": [{"site": "engine.sample", "engine": "batch",
                           "rate": 1.0}]},
        retry={"attempts": 1, "fallback_engines": ["scalar"]},
    )
    result = Session(config).run(fig2_spec)
    assert result.degraded
    assert result.execution.engine == "scalar"
    assert result.execution.attempts  # the failed batch attempt is logged
    # the degraded run equals a straight scalar run ...
    scalar = run_tiny("fig2", RunConfig(engine="scalar"))
    assert result.payload == scalar.payload
    # ... and the downgrade is recorded in the serialized result
    doc = result.to_dict()
    assert doc["execution"]["degraded"] is True
    assert doc["execution"]["engine"] == "scalar"
    # but the config still names the engine that was asked for
    assert doc["config"]["engine"] == "batch"


def test_execution_record_roundtrips():
    record = ExecutionRecord(
        engine="scalar", degraded=True,
        attempts=({"attempt": 0, "code": "fault-injected"},),
    )
    assert ExecutionRecord.from_dict(record.to_dict()) == record


def test_default_path_result_has_timing_only_execution_record(run_tiny):
    result = run_tiny("fig2")
    # Timing is always recorded ...
    assert result.execution is not None
    assert not result.execution.significant
    assert result.execution.started_at is not None
    assert result.execution.elapsed >= 0.0
    # ... but never serialized by default, so default-path documents
    # keep their historical layout byte-for-byte.
    assert "execution" not in result.to_dict()
    timed = result.to_dict(include_timing=True)
    assert timed["execution"]["elapsed"] == result.execution.elapsed
    assert timed["execution"]["started_at"] == result.execution.started_at


def test_timeout_policy_raises_run_timeout(fig2_spec):
    with pytest.raises(RunTimeoutError):
        Session(RunConfig(timeout=1e-12)).run(fig2_spec)


def test_timeout_error_is_not_retried_into_simulation_error(fig2_spec):
    # RunTimeoutError must surface as itself, not wrapped per-replication.
    config = RunConfig(timeout=1e-12, retry={"attempts": 2})
    with pytest.raises(RunTimeoutError) as exc:
        Session(config).run(fig2_spec)
    assert exc.value.error_document.code == "timeout"


def test_resilient_defaults_are_bit_identical_to_fast_path(run_tiny):
    plain = run_tiny("fig2")
    armed = run_tiny(
        "fig2", RunConfig(faults={"rules": []}, retry={"attempts": 2})
    )
    assert plain.payload == armed.payload
    assert plain.to_dict()["payload"] == armed.to_dict()["payload"]
