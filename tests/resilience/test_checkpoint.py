"""Checkpointed ``run_many``: kill-and-resume must be byte-identical."""

from __future__ import annotations

import json

import pytest

from repro.api import RunConfig, Session
from repro.errors import CheckpointError
from repro.resilience.checkpoint import CheckpointJournal

from tiny import tiny_spec


def _specs():
    return [tiny_spec("fig2"), tiny_spec("fig3"), tiny_spec("fig4")]


def test_resumed_batch_is_byte_identical(tmp_path):
    full_path = tmp_path / "full.jsonl"
    uninterrupted = Session(RunConfig()).run_many(
        _specs(), checkpoint=full_path
    )
    golden = uninterrupted.to_json()

    # Simulate a kill after two completed specs: truncate the journal.
    lines = full_path.read_text().splitlines()
    assert len(lines) == 3
    partial_path = tmp_path / "partial.jsonl"
    partial_path.write_text("\n".join(lines[:2]) + "\n")

    resumed = Session(RunConfig()).run_many(_specs(), checkpoint=partial_path)
    assert resumed.to_json() == golden
    assert sum(1 for o in resumed.outcomes if o.restored) == 2
    # the resumed run journaled the third spec: a second resume is a
    # full restore and still byte-identical
    re_resumed = Session(RunConfig()).run_many(
        _specs(), checkpoint=partial_path
    )
    assert re_resumed.to_json() == golden
    assert all(o.restored for o in re_resumed.outcomes)


def test_restored_results_rebuild_run_results(tmp_path):
    path = tmp_path / "journal.jsonl"
    first = Session(RunConfig()).run_many([tiny_spec("fig2")], checkpoint=path)
    second = Session(RunConfig()).run_many(
        [tiny_spec("fig2")], checkpoint=path
    )
    [restored] = second.results
    [original] = first.results
    # a restored result holds the JSON-form payload; the serialized
    # documents (what any downstream consumer sees) are identical.
    assert restored.fingerprint == original.fingerprint
    assert restored.to_dict() == original.to_dict()
    assert restored.to_dict()["payload"] == original.to_dict()["payload"]


def test_partial_trailing_line_is_tolerated(tmp_path):
    path = tmp_path / "journal.jsonl"
    Session(RunConfig()).run_many(_specs()[:2], checkpoint=path)
    with open(path, "a") as handle:
        handle.write('{"fingerprint": "dead', )  # killed mid-write
    entries = CheckpointJournal(path).load()
    assert len(entries) == 2


def test_mid_file_corruption_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    Session(RunConfig()).run_many(_specs()[:2], checkpoint=path)
    lines = path.read_text().splitlines()
    path.write_text("\n".join([lines[0], "garbage", lines[1]]) + "\n")
    with pytest.raises(CheckpointError, match="malformed journal line 2"):
        CheckpointJournal(path).load()


def test_non_entry_line_raises(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text(json.dumps({"not": "an entry"}) + "\n" + "x\n")
    with pytest.raises(CheckpointError, match="journal entry"):
        CheckpointJournal(path).load()


def test_missing_journal_loads_empty(tmp_path):
    assert CheckpointJournal(tmp_path / "absent.jsonl").load() == {}


def test_failed_specs_are_not_journaled_and_rerun(tmp_path):
    path = tmp_path / "journal.jsonl"
    bad = RunConfig(faults={"rules": [{"site": "run.start", "at": [0]}]})
    report = Session(bad).run_many([tiny_spec("fig2")], checkpoint=path)
    assert not report.ok
    # nothing durably completed
    assert not path.exists() or path.read_text() == ""
    # a rerun with the fault removed completes and journals
    good = Session(RunConfig()).run_many([tiny_spec("fig2")], checkpoint=path)
    assert good.ok
    assert len(path.read_text().splitlines()) == 1
