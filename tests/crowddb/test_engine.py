"""Unit tests for repro.crowddb.engine (end-to-end tuned queries)."""

from __future__ import annotations

import pytest

from repro import Tuner
from repro.crowddb import CrowdFilter, CrowdMax, CrowdQueryEngine, CrowdSort
from repro.errors import PlanError
from repro.market import CrowdPlatform, LinearPricing, MarketModel, TaskType


@pytest.fixture
def vote_type():
    # Perfect accuracy so results are deterministic; latency still random.
    return TaskType("vote", processing_rate=2.0, accuracy=1.0)


@pytest.fixture
def engine():
    market = MarketModel(LinearPricing(1.0, 1.0))
    platform = CrowdPlatform(market, seed=0)
    return CrowdQueryEngine(
        platform, {"vote": LinearPricing(1.0, 1.0)}, tuner=Tuner(seed=0)
    )


class TestEngineConstruction:
    def test_needs_pricing(self):
        platform = CrowdPlatform(MarketModel(LinearPricing(1.0, 1.0)), seed=0)
        with pytest.raises(PlanError):
            CrowdQueryEngine(platform, {})


class TestFilterExecution:
    def test_filter_query(self, engine, vote_type):
        op = CrowdFilter(
            items=list("abcd"),
            truths=[True, False, True, False],
            task_type=vote_type,
            repetitions=3,
        )
        outcome = engine.execute(op, budget=100)
        assert outcome.result == ["a", "c"]
        assert outcome.latency > 0
        assert outcome.total_paid <= 100
        assert outcome.strategy in ("ea", "ra", "ha")

    def test_budget_respected(self, engine, vote_type):
        op = CrowdFilter(
            items=["a", "b"], truths=[True, True], task_type=vote_type,
            repetitions=2,
        )
        outcome = engine.execute(op, budget=50)
        assert outcome.allocation.total_cost <= 50


class TestSortExecution:
    def test_sort_query(self, engine, vote_type):
        op = CrowdSort(
            items=list("dcba"), keys=[4, 3, 2, 1], task_type=vote_type,
            repetitions=3,
        )
        outcome = engine.execute(op, budget=200)
        assert outcome.result == ["a", "b", "c", "d"]

    def test_next_votes_strategy_uses_repetition_scenario(
        self, engine, vote_type
    ):
        op = CrowdSort(
            items=list("abcd"), keys=[1.0, 1.01, 5.0, 9.0],
            task_type=vote_type, repetitions=3, strategy="next_votes",
        )
        outcome = engine.execute(op, budget=120)
        # Hard pairs create repetition heterogeneity → Scenario II → RA.
        assert outcome.strategy == "ra"
        assert outcome.result == op.ground_truth()


class TestTournamentExecution:
    def test_max_query(self, engine, vote_type):
        op = CrowdMax(
            items=list("abcdefg"), keys=[3, 9, 1, 7, 5, 2, 8],
            task_type=vote_type, repetitions=3,
        )
        outcome = engine.execute_tournament(op, budget=300)
        assert outcome.result == "b"
        assert outcome.latency > 0
        assert outcome.total_paid <= 300

    def test_two_items(self, engine, vote_type):
        op = CrowdMax(items=["x", "y"], keys=[1, 2], task_type=vote_type)
        outcome = engine.execute_tournament(op, budget=60)
        assert outcome.result == "y"
