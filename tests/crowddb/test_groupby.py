"""Unit tests for repro.crowddb.operators.groupby."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowddb import CategoryQuestion, CrowdGroupBy
from repro.errors import PlanError
from repro.market import TaskType


@pytest.fixture
def vote_type():
    return TaskType("categorize", processing_rate=2.0, accuracy=0.9)


ANIMALS = ("cat", "dog", "bird")


def answers_for(op, accuracy=1.0, seed=0):
    rng = np.random.default_rng(seed)
    return {
        i: [q.question.sample_answer(rng, accuracy)
            for _ in range(q.repetitions)]
        for i, q in enumerate(op.plan())
    }


class TestCategoryQuestion:
    def test_perfect_worker(self, rng):
        q = CategoryQuestion("img", "cat", ANIMALS)
        assert all(q.sample_answer(rng, 1.0) == "cat" for _ in range(20))

    def test_errors_uniform_over_others(self, rng):
        q = CategoryQuestion("img", "cat", ANIMALS)
        wrong = [
            a for a in (q.sample_answer(rng, 0.5) for _ in range(6000))
            if a != "cat"
        ]
        dogs = sum(1 for a in wrong if a == "dog") / len(wrong)
        assert dogs == pytest.approx(0.5, abs=0.04)

    def test_accuracy_rate(self, rng):
        q = CategoryQuestion("img", "bird", ANIMALS)
        hits = np.mean(
            [q.sample_answer(rng, 0.8) == "bird" for _ in range(6000)]
        )
        assert hits == pytest.approx(0.8, abs=0.02)

    def test_validation(self):
        with pytest.raises(PlanError):
            CategoryQuestion("img", "cat", ("cat",))
        with pytest.raises(PlanError):
            CategoryQuestion("img", "fish", ANIMALS)
        with pytest.raises(PlanError):
            CategoryQuestion("img", "cat", ("cat", "cat"))


class TestCrowdGroupBy:
    def test_perfect_crowd_exact_grouping(self, vote_type):
        items = [f"img{i}" for i in range(6)]
        labels = ["cat", "dog", "cat", "bird", "dog", "cat"]
        op = CrowdGroupBy(
            items=items, labels=labels, categories=ANIMALS,
            task_type=vote_type,
        )
        groups = op.collect(answers_for(op))
        assert groups == op.ground_truth()
        assert groups["cat"] == ["img0", "img2", "img5"]

    def test_all_categories_present_even_when_empty(self, vote_type):
        op = CrowdGroupBy(
            items=["x"], labels=["cat"], categories=ANIMALS,
            task_type=vote_type,
        )
        groups = op.collect(answers_for(op))
        assert set(groups) == set(ANIMALS)
        assert groups["bird"] == []

    def test_accuracy_metric(self, vote_type):
        items = list(range(40))
        labels = [ANIMALS[i % 3] for i in items]
        op = CrowdGroupBy(
            items=items, labels=labels, categories=ANIMALS,
            task_type=vote_type, repetitions=5,
        )
        acc = op.accuracy_against_truth(answers_for(op, accuracy=0.85, seed=1))
        assert acc > 0.85  # plurality of 5 beats single-vote accuracy

    def test_hard_items_get_extra_votes(self, vote_type):
        op = CrowdGroupBy(
            items=["a", "b"], labels=["cat", "dog"], categories=ANIMALS,
            task_type=vote_type, repetitions=3, hard_items=[1], hard_extra=4,
        )
        assert [q.repetitions for q in op.plan()] == [3, 7]

    def test_validation(self, vote_type):
        with pytest.raises(PlanError):
            CrowdGroupBy(items=[], labels=[], categories=ANIMALS,
                         task_type=vote_type)
        with pytest.raises(PlanError):
            CrowdGroupBy(items=["a"], labels=["cat", "dog"],
                         categories=ANIMALS, task_type=vote_type)
        with pytest.raises(PlanError):
            CrowdGroupBy(items=["a"], labels=["fish"], categories=ANIMALS,
                         task_type=vote_type)
        with pytest.raises(PlanError):
            CrowdGroupBy(items=["a"], labels=["cat"], categories=("cat",),
                         task_type=vote_type)
        with pytest.raises(PlanError):
            CrowdGroupBy(items=["a"], labels=["cat"], categories=ANIMALS,
                         task_type=vote_type, hard_items=[3])

    def test_missing_answers_rejected(self, vote_type):
        op = CrowdGroupBy(
            items=["a"], labels=["cat"], categories=ANIMALS,
            task_type=vote_type,
        )
        with pytest.raises(PlanError):
            op.collect({})

    def test_engine_integration(self, vote_type):
        from repro import Tuner
        from repro.crowddb import CrowdQueryEngine
        from repro.market import CrowdPlatform, LinearPricing, MarketModel

        perfect = TaskType("categorize", processing_rate=2.0, accuracy=1.0)
        platform = CrowdPlatform(MarketModel(LinearPricing(1.0, 1.0)), seed=0)
        engine = CrowdQueryEngine(
            platform, {"categorize": LinearPricing(1.0, 1.0)},
            tuner=Tuner(seed=0),
        )
        op = CrowdGroupBy(
            items=["a", "b", "c"], labels=["cat", "dog", "cat"],
            categories=ANIMALS, task_type=perfect,
        )
        outcome = engine.execute(op, budget=60)
        assert outcome.result == op.ground_truth()
