"""Unit tests for repro.crowddb.planner."""

from __future__ import annotations

import pytest

from repro import Allocation
from repro.crowddb import CrowdQuery, PlannedQuestion, PredicateQuestion
from repro.errors import PlanError
from repro.market import LinearPricing, TaskType


@pytest.fixture
def vote_type():
    return TaskType("vote", processing_rate=2.0, accuracy=0.9)


@pytest.fixture
def pricing_registry():
    return {"vote": LinearPricing(1.0, 1.0)}


def make_query(vote_type, pricing_registry, reps=(2, 3), budget=40):
    questions = [
        PlannedQuestion(
            PredicateQuestion(item=f"item{i}", truth=True), vote_type, r
        )
        for i, r in enumerate(reps)
    ]
    return CrowdQuery(questions, pricing_registry, budget)


class TestPlannedQuestion:
    def test_valid(self, vote_type):
        q = PlannedQuestion(PredicateQuestion("x", True), vote_type, 3)
        assert q.repetitions == 3

    def test_rejects_bad_repetitions(self, vote_type):
        with pytest.raises(PlanError):
            PlannedQuestion(PredicateQuestion("x", True), vote_type, 0)

    def test_rejects_payload_without_sampler(self, vote_type):
        with pytest.raises(PlanError):
            PlannedQuestion("just a string", vote_type, 1)


class TestCrowdQuery:
    def test_to_problem_structure(self, vote_type, pricing_registry):
        query = make_query(vote_type, pricing_registry)
        problem = query.to_problem()
        assert problem.num_tasks == 2
        assert problem.tasks[0].repetitions == 2
        assert problem.tasks[1].repetitions == 3
        assert problem.budget == 40

    def test_missing_pricing_rejected(self, vote_type):
        with pytest.raises(PlanError):
            make_query(vote_type, {"other": LinearPricing(1.0, 1.0)})

    def test_empty_questions_rejected(self, pricing_registry):
        with pytest.raises(PlanError):
            CrowdQuery([], pricing_registry, 10)

    def test_to_orders_roundtrip(self, vote_type, pricing_registry):
        query = make_query(vote_type, pricing_registry)
        allocation = Allocation({0: [4, 4], 1: [3, 3, 3]})
        orders = query.to_orders(allocation)
        assert [o.atomic_task_id for o in orders] == [0, 1]
        assert orders[0].prices == (4, 4)
        assert orders[1].prices == (3, 3, 3)
        assert orders[0].payload is query.questions[0].question

    def test_to_orders_checks_coverage(self, vote_type, pricing_registry):
        query = make_query(vote_type, pricing_registry)
        with pytest.raises(PlanError):
            query.to_orders(Allocation({0: [4, 4]}))  # task 1 missing

    def test_to_orders_checks_repetitions(self, vote_type, pricing_registry):
        query = make_query(vote_type, pricing_registry)
        with pytest.raises(PlanError):
            query.to_orders(Allocation({0: [4], 1: [3, 3, 3]}))
