"""Unit tests for the crowd-DB operators (sort / filter / max / count)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowddb import (
    CrowdCount,
    CrowdFilter,
    CrowdMax,
    CrowdSort,
    CrowdThresholdFilter,
)
from repro.errors import PlanError
from repro.market import TaskType


@pytest.fixture
def vote_type():
    return TaskType("vote", processing_rate=2.0, accuracy=0.9)


def perfect_answers(operator, rng=None):
    """Simulate an errorless crowd answering the operator's plan."""
    gen = np.random.default_rng(0) if rng is None else rng
    return {
        i: [q.question.sample_answer(gen, 1.0) for _ in range(q.repetitions)]
        for i, q in enumerate(operator.plan())
    }


class TestCrowdSortAllPairs:
    def test_plan_size(self, vote_type):
        op = CrowdSort(
            items=list("abcd"), keys=[3, 1, 4, 2], task_type=vote_type,
            repetitions=3,
        )
        assert len(op.plan()) == 6  # C(4,2)

    def test_plan_cached(self, vote_type):
        op = CrowdSort(items=["a", "b"], keys=[1, 2], task_type=vote_type)
        assert op.plan() is op.plan()

    def test_perfect_crowd_recovers_order(self, vote_type):
        items = list("abcde")
        keys = [5, 3, 1, 4, 2]
        op = CrowdSort(items=items, keys=keys, task_type=vote_type)
        result = op.collect(perfect_answers(op))
        assert result == op.ground_truth()
        assert [keys[items.index(x)] for x in result] == sorted(keys)

    def test_noisy_crowd_mostly_correct(self, vote_type, rng):
        items = list(range(6))
        keys = [10, 20, 30, 40, 50, 60]
        op = CrowdSort(items=items, keys=keys, task_type=vote_type,
                       repetitions=9)
        answers = {
            i: [q.question.sample_answer(rng, 0.85) for _ in range(q.repetitions)]
            for i, q in enumerate(op.plan())
        }
        result = op.collect(answers)
        # Kendall-tau-ish: at most one adjacent transposition off.
        truth = op.ground_truth()
        misplaced = sum(1 for a, b in zip(result, truth) if a != b)
        assert misplaced <= 2

    def test_validation(self, vote_type):
        with pytest.raises(PlanError):
            CrowdSort(items=["a"], keys=[1], task_type=vote_type)
        with pytest.raises(PlanError):
            CrowdSort(items=["a", "b"], keys=[1], task_type=vote_type)
        with pytest.raises(PlanError):
            CrowdSort(items=["a", "b"], keys=[1, 1], task_type=vote_type)
        with pytest.raises(PlanError):
            CrowdSort(items=["a", "b"], keys=[1, 2], task_type=vote_type,
                      repetitions=0)
        with pytest.raises(PlanError):
            CrowdSort(items=["a", "b"], keys=[1, 2], task_type=vote_type,
                      strategy="bogus")

    def test_missing_answers_rejected(self, vote_type):
        op = CrowdSort(items=["a", "b"], keys=[1, 2], task_type=vote_type)
        with pytest.raises(PlanError):
            op.collect({})


class TestCrowdSortNextVotes:
    def test_plan_is_adjacent_pairs(self, vote_type):
        op = CrowdSort(
            items=list("abcd"), keys=[1, 2, 3, 4], task_type=vote_type,
            strategy="next_votes",
        )
        assert len(op.plan()) == 3

    def test_hard_pairs_get_extra_votes(self, vote_type):
        op = CrowdSort(
            items=list("abcd"),
            keys=[1.0, 1.05, 5.0, 10.0],  # (a,b) is the close pair
            task_type=vote_type,
            repetitions=3,
            hard_pair_extra=2,
            strategy="next_votes",
        )
        reps = [q.repetitions for q in op.plan()]
        assert max(reps) == 5
        assert min(reps) == 3

    def test_perfect_crowd_recovers_order(self, vote_type):
        items = list("abcde")
        keys = [5, 3, 1, 4, 2]
        op = CrowdSort(items=items, keys=keys, task_type=vote_type,
                       strategy="next_votes")
        result = op.collect(perfect_answers(op))
        assert result == op.ground_truth()


class TestCrowdFilter:
    def test_plan_one_question_per_item(self, vote_type):
        op = CrowdFilter(
            items=list("abc"), truths=[True, False, True], task_type=vote_type
        )
        assert len(op.plan()) == 3

    def test_perfect_crowd_exact_filter(self, vote_type):
        op = CrowdFilter(
            items=list("abcd"), truths=[True, False, True, False],
            task_type=vote_type,
        )
        result = op.collect(perfect_answers(op))
        assert result == ["a", "c"]
        assert result == op.ground_truth()

    def test_hard_items_get_extra_votes(self, vote_type):
        op = CrowdFilter(
            items=list("abc"), truths=[True, False, True],
            task_type=vote_type, repetitions=3, hard_items=[1], hard_extra=4,
        )
        reps = [q.repetitions for q in op.plan()]
        assert reps == [3, 7, 3]

    def test_confidence_output(self, vote_type):
        op = CrowdFilter(
            items=["a"], truths=[True], task_type=vote_type, repetitions=5
        )
        triples = op.collect_with_confidence(perfect_answers(op))
        ((item, verdict, conf),) = triples
        assert item == "a" and verdict is True and conf > 0.9

    def test_validation(self, vote_type):
        with pytest.raises(PlanError):
            CrowdFilter(items=[], truths=[], task_type=vote_type)
        with pytest.raises(PlanError):
            CrowdFilter(items=["a"], truths=[True, False], task_type=vote_type)
        with pytest.raises(PlanError):
            CrowdFilter(items=["a"], truths=[True], task_type=vote_type,
                        hard_items=[5])


class TestCrowdMax:
    def test_tournament_rounds(self, vote_type):
        op = CrowdMax(items=list(range(8)), keys=list(range(8)),
                      task_type=vote_type)
        assert op.num_rounds == 3

    def test_perfect_crowd_finds_max(self, vote_type, rng):
        keys = [3, 9, 1, 7, 5]
        op = CrowdMax(items=list("abcde"), keys=keys, task_type=vote_type)
        while not op.finished:
            planned = op.plan_round()
            answers = {
                i: [q.question.sample_answer(rng, 1.0)
                    for _ in range(q.repetitions)]
                for i, q in enumerate(planned)
            }
            op.collect_round(answers)
        assert op.winner == "b"
        assert op.winner == op.ground_truth()

    def test_bye_advances(self, vote_type, rng):
        op = CrowdMax(items=list("abc"), keys=[1, 2, 3], task_type=vote_type)
        planned = op.plan_round()
        assert len(planned) == 1  # one match, 'c' gets the bye
        answers = {0: [q.question.sample_answer(rng, 1.0)
                       for _ in range(planned[0].repetitions)]
                   for q in planned}
        survivors = op.collect_round(answers)
        assert "c" in survivors

    def test_winner_before_finish_rejected(self, vote_type):
        op = CrowdMax(items=["a", "b"], keys=[1, 2], task_type=vote_type)
        with pytest.raises(PlanError):
            _ = op.winner

    def test_single_item_already_finished(self, vote_type):
        op = CrowdMax(items=["a"], keys=[1], task_type=vote_type)
        assert op.finished
        assert op.winner == "a"
        with pytest.raises(PlanError):
            op.plan_round()


class TestCrowdCount:
    def test_estimates_close_to_truth(self, vote_type, rng):
        op = CrowdCount(
            items=["x", "y"], true_counts=[50, 200], task_type=vote_type,
            repetitions=15,
        )
        answers = {
            i: [q.question.sample_answer(rng, 0.9) for _ in range(q.repetitions)]
            for i, q in enumerate(op.plan())
        }
        estimates = op.collect(answers)
        assert estimates["x"] == pytest.approx(50, rel=0.2)
        assert estimates["y"] == pytest.approx(200, rel=0.2)

    def test_validation(self, vote_type):
        with pytest.raises(PlanError):
            CrowdCount(items=[], true_counts=[], task_type=vote_type)
        with pytest.raises(PlanError):
            CrowdCount(items=["a"], true_counts=[1, 2], task_type=vote_type)


class TestCrowdThresholdFilter:
    def test_end_to_end_threshold(self, vote_type, rng):
        op = CrowdThresholdFilter(
            items=["lo", "hi"], true_counts=[10, 500], threshold=100,
            task_type=vote_type, repetitions=9,
        )
        answers = {
            i: [q.question.sample_answer(rng, 0.9) for _ in range(q.repetitions)]
            for i, q in enumerate(op.plan())
        }
        assert op.collect(answers) == ["hi"]
        assert op.ground_truth() == ["hi"]
