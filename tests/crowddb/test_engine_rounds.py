"""Integration tests for the generic multi-round engine driver."""

from __future__ import annotations

import pytest

from repro import Tuner
from repro.crowddb import CrowdMax, CrowdQueryEngine, CrowdTopK
from repro.market import CrowdPlatform, LinearPricing, MarketModel, TaskType


@pytest.fixture
def vote_type():
    return TaskType("vote", processing_rate=2.0, accuracy=1.0)


@pytest.fixture
def engine():
    market = MarketModel(LinearPricing(1.0, 1.0))
    platform = CrowdPlatform(market, seed=11)
    return CrowdQueryEngine(
        platform, {"vote": LinearPricing(1.0, 1.0)}, tuner=Tuner(seed=0)
    )


class TestExecuteRounds:
    def test_topk_end_to_end(self, engine, vote_type):
        keys = [4.0, 11.0, 2.0, 9.0, 7.0, 1.0, 3.0, 8.0, 6.0, 10.0]
        op = CrowdTopK(
            items=list(range(10)), keys=keys, k=3,
            task_type=vote_type, repetitions=3,
        )
        outcome = engine.execute_rounds(op, budget=500)
        assert outcome.result == op.ground_truth()
        assert outcome.latency > 0
        assert outcome.total_paid <= 500

    def test_max_via_generic_driver(self, engine, vote_type):
        op = CrowdMax(
            items=list("abcde"), keys=[3, 9, 1, 7, 5],
            task_type=vote_type, repetitions=3,
        )
        outcome = engine.execute_rounds(op, budget=200)
        assert outcome.result == "b"

    def test_tournament_alias(self, engine, vote_type):
        op = CrowdMax(
            items=["x", "y"], keys=[1, 2], task_type=vote_type
        )
        outcome = engine.execute_tournament(op, budget=60)
        assert outcome.result == "y"

    def test_rounds_accumulate_latency(self, engine, vote_type):
        # Two-round top-k: total latency must exceed any single batch's.
        op = CrowdTopK(
            items=list(range(12)),
            keys=[float(i) for i in range(12)],
            k=2,
            task_type=vote_type,
            repetitions=3,
        )
        outcome = engine.execute_rounds(op, budget=600)
        assert set(outcome.result) == set(op.ground_truth())
        assert outcome.latency > 0


class TestMaxResultAlias:
    def test_result_equals_winner(self, vote_type):
        op = CrowdMax(items=["a"], keys=[1.0], task_type=vote_type)
        assert op.result == op.winner == "a"
