"""Unit tests for repro.crowddb.aggregate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowddb import (
    ComparisonQuestion,
    CountQuestion,
    PredicateQuestion,
    aggregate_numeric,
    majority_confidence,
    majority_vote,
)
from repro.errors import PlanError


class TestComparisonQuestion:
    def test_truth(self):
        q = ComparisonQuestion("a", "b", left_key=1.0, right_key=2.0)
        assert q.truth is True
        q2 = ComparisonQuestion("a", "b", left_key=5.0, right_key=2.0)
        assert q2.truth is False

    def test_rejects_equal_keys(self):
        with pytest.raises(PlanError):
            ComparisonQuestion("a", "b", left_key=1.0, right_key=1.0)

    def test_perfect_worker(self, rng):
        q = ComparisonQuestion("a", "b", left_key=1.0, right_key=2.0)
        assert all(q.sample_answer(rng, 1.0) for _ in range(20))

    def test_error_rate(self, rng):
        q = ComparisonQuestion("a", "b", left_key=1.0, right_key=2.0)
        answers = [q.sample_answer(rng, 0.8) for _ in range(5000)]
        assert np.mean(answers) == pytest.approx(0.8, abs=0.02)

    def test_unique_qids(self):
        a = ComparisonQuestion("a", "b", 1.0, 2.0)
        b = ComparisonQuestion("a", "b", 1.0, 2.0)
        assert a.qid != b.qid


class TestPredicateQuestion:
    def test_sampling(self, rng):
        q = PredicateQuestion(item="x", truth=True)
        answers = [q.sample_answer(rng, 0.9) for _ in range(5000)]
        assert np.mean(answers) == pytest.approx(0.9, abs=0.02)

    def test_false_truth(self, rng):
        q = PredicateQuestion(item="x", truth=False)
        answers = [q.sample_answer(rng, 0.9) for _ in range(5000)]
        assert np.mean(answers) == pytest.approx(0.1, abs=0.02)


class TestCountQuestion:
    def test_unbiased_around_truth(self, rng):
        q = CountQuestion(item="img", true_count=100)
        answers = [q.sample_answer(rng, 0.9) for _ in range(5000)]
        assert np.mean(answers) == pytest.approx(100, rel=0.02)

    def test_accuracy_shrinks_noise(self, rng):
        q = CountQuestion(item="img", true_count=100)
        sloppy = np.std([q.sample_answer(rng, 0.6) for _ in range(3000)])
        careful = np.std([q.sample_answer(rng, 0.95) for _ in range(3000)])
        assert careful < sloppy

    def test_never_negative(self, rng):
        q = CountQuestion(item="img", true_count=2)
        assert all(q.sample_answer(rng, 0.5) >= 0 for _ in range(500))

    def test_validation(self):
        with pytest.raises(PlanError):
            CountQuestion(item="x", true_count=-1)
        with pytest.raises(PlanError):
            CountQuestion(item="x", true_count=5, noise_floor=-0.1)


class TestMajorityVote:
    def test_simple_majority(self):
        assert majority_vote([True, True, False]) is True
        assert majority_vote(["a", "b", "b"]) == "b"

    def test_tie_break_deterministic(self):
        assert majority_vote([True, False]) == majority_vote([False, True])

    def test_empty_rejected(self):
        with pytest.raises(PlanError):
            majority_vote([])


class TestMajorityConfidence:
    def test_unanimous_votes_high_confidence(self):
        conf = majority_confidence([True] * 5, accuracy=0.8)
        assert conf > 0.99

    def test_split_votes_low_confidence(self):
        conf = majority_confidence([True, True, False], accuracy=0.6)
        assert 0.5 < conf < 0.8

    def test_perfect_accuracy(self):
        assert majority_confidence([True], accuracy=1.0) == 1.0

    def test_more_votes_more_confidence(self):
        low = majority_confidence([True] * 3, accuracy=0.7)
        high = majority_confidence([True] * 9, accuracy=0.7)
        assert high > low

    def test_validation(self):
        with pytest.raises(PlanError):
            majority_confidence([], accuracy=0.8)
        with pytest.raises(PlanError):
            majority_confidence([True], accuracy=0.4)
        with pytest.raises(PlanError):
            majority_confidence([True], accuracy=0.8, prior=0.0)


class TestAggregateNumeric:
    def test_plain_mean(self):
        assert aggregate_numeric([1.0, 2.0, 3.0], trim=0.0) == pytest.approx(2.0)

    def test_trimmed_mean_robust_to_outlier(self):
        values = [10.0] * 9 + [1000.0]
        assert aggregate_numeric(values, trim=0.1) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(PlanError):
            aggregate_numeric([])
        with pytest.raises(PlanError):
            aggregate_numeric([1.0], trim=0.5)

    def test_tiny_sample_survives_trim(self):
        assert aggregate_numeric([5.0], trim=0.4) == 5.0
