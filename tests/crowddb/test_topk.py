"""Unit tests for repro.crowddb.operators.topk."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowddb import CrowdTopK
from repro.errors import PlanError
from repro.market import TaskType


@pytest.fixture
def vote_type():
    return TaskType("vote", processing_rate=2.0, accuracy=0.9)


def run_to_completion(op, accuracy=1.0, seed=0):
    rng = np.random.default_rng(seed)
    while not op.finished:
        planned = op.plan_round()
        answers = {
            i: [q.question.sample_answer(rng, accuracy)
                for _ in range(q.repetitions)]
            for i, q in enumerate(planned)
        }
        op.collect_round(answers)
    return op.result


class TestCrowdTopK:
    def test_perfect_crowd_exact_topk(self, vote_type):
        keys = [3.0, 9.0, 1.0, 7.0, 5.0, 2.0, 8.0, 4.0, 6.0, 0.5]
        op = CrowdTopK(
            items=list(range(10)), keys=keys, k=3, task_type=vote_type
        )
        result = run_to_completion(op)
        assert set(result) == set(op.ground_truth())
        # Final round orders by wins — exact order for a perfect crowd.
        assert result == op.ground_truth()

    def test_small_input_skips_pruning(self, vote_type):
        op = CrowdTopK(
            items=["a", "b", "c"], keys=[1.0, 3.0, 2.0], k=2,
            task_type=vote_type,
        )
        planned = op.plan_round()
        assert len(planned) == 3  # all pairs of 3 items, straight to final
        rng = np.random.default_rng(0)
        answers = {
            i: [q.question.sample_answer(rng, 1.0) for _ in range(q.repetitions)]
            for i, q in enumerate(planned)
        }
        op.collect_round(answers)
        assert op.finished
        assert op.result == ["b", "c"]

    def test_k_equals_n(self, vote_type):
        op = CrowdTopK(
            items=["a", "b"], keys=[1.0, 2.0], k=2, task_type=vote_type
        )
        result = run_to_completion(op)
        assert set(result) == {"a", "b"}

    def test_k_one_finds_max(self, vote_type):
        keys = [float(k) for k in (4, 11, 2, 9, 7, 1, 3, 8)]
        op = CrowdTopK(
            items=list(range(8)), keys=keys, k=1, task_type=vote_type
        )
        result = run_to_completion(op)
        assert result == [1]  # index of key 11

    def test_pruning_reduces_comparisons(self, vote_type):
        n, k = 20, 2
        op = CrowdTopK(
            items=list(range(n)),
            keys=[float(i) for i in range(n)],
            k=k,
            task_type=vote_type,
        )
        first_round = op.plan_round()
        all_pairs = n * (n - 1) // 2
        assert len(first_round) < all_pairs

    def test_noisy_crowd_high_recall(self, vote_type):
        keys = [float(i * 10) for i in range(12)]  # well separated
        hits = 0
        for seed in range(20):
            op = CrowdTopK(
                items=list(range(12)), keys=keys, k=3,
                task_type=vote_type, repetitions=7,
            )
            result = run_to_completion(op, accuracy=0.85, seed=seed)
            hits += len(set(result) & set(op.ground_truth()))
        assert hits / (20 * 3) > 0.8

    def test_result_before_finish_rejected(self, vote_type):
        op = CrowdTopK(
            items=list(range(10)), keys=[float(i) for i in range(10)],
            k=2, task_type=vote_type,
        )
        with pytest.raises(PlanError):
            _ = op.result

    def test_collect_without_plan_rejected(self, vote_type):
        op = CrowdTopK(
            items=["a", "b", "c"], keys=[1.0, 2.0, 3.0], k=1,
            task_type=vote_type,
        )
        with pytest.raises(PlanError):
            op.collect_round({})

    def test_validation(self, vote_type):
        with pytest.raises(PlanError):
            CrowdTopK(items=[], keys=[], k=1, task_type=vote_type)
        with pytest.raises(PlanError):
            CrowdTopK(items=["a"], keys=[1.0], k=2, task_type=vote_type)
        with pytest.raises(PlanError):
            CrowdTopK(items=["a", "b"], keys=[1.0, 1.0], k=1,
                      task_type=vote_type)
        with pytest.raises(PlanError):
            CrowdTopK(items=["a", "b"], keys=[1.0], k=1, task_type=vote_type)
