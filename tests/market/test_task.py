"""Unit tests for repro.market.task."""

from __future__ import annotations

import pytest

from repro.errors import ModelError, SimulationError
from repro.market import PublishedTask, TaskState, TaskType


class TestTaskType:
    def test_valid(self):
        t = TaskType("vote", processing_rate=2.0, accuracy=0.9)
        assert t.name == "vote"

    def test_rejects_empty_name(self):
        with pytest.raises(ModelError):
            TaskType("", processing_rate=1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ModelError):
            TaskType("x", processing_rate=0.0)

    def test_rejects_bad_accuracy(self):
        with pytest.raises(ModelError):
            TaskType("x", processing_rate=1.0, accuracy=0.0)
        with pytest.raises(ModelError):
            TaskType("x", processing_rate=1.0, accuracy=1.5)

    def test_rejects_bad_attractiveness(self):
        with pytest.raises(ModelError):
            TaskType("x", processing_rate=1.0, attractiveness=0.0)

    def test_frozen(self):
        t = TaskType("x", processing_rate=1.0)
        with pytest.raises(AttributeError):
            t.name = "y"


def make_task(**kwargs):
    defaults = dict(
        task_type=TaskType("vote", processing_rate=2.0),
        price=3,
        atomic_task_id=0,
        repetition_index=0,
    )
    defaults.update(kwargs)
    return PublishedTask(**defaults)


class TestPublishedTaskLifecycle:
    def test_initial_state(self):
        task = make_task()
        assert task.state is TaskState.OPEN
        assert not task.is_done

    def test_full_lifecycle(self):
        task = make_task()
        task.mark_published(0.0)
        task.mark_accepted(1.5, worker_id=7)
        task.mark_completed(4.0, answer=True)
        assert task.is_done
        assert task.onhold_latency == pytest.approx(1.5)
        assert task.processing_latency == pytest.approx(2.5)
        assert task.overall_latency == pytest.approx(4.0)
        assert task.worker_id == 7
        assert task.answer is True

    def test_rejects_double_publish(self):
        task = make_task()
        task.mark_published(0.0)
        with pytest.raises(SimulationError):
            task.mark_published(1.0)

    def test_rejects_accept_before_publish(self):
        task = make_task()
        with pytest.raises(SimulationError):
            task.mark_accepted(1.0)

    def test_rejects_accept_in_the_past(self):
        task = make_task()
        task.mark_published(5.0)
        with pytest.raises(SimulationError):
            task.mark_accepted(4.0)

    def test_rejects_complete_without_accept(self):
        task = make_task()
        task.mark_published(0.0)
        with pytest.raises(SimulationError):
            task.mark_completed(2.0)

    def test_rejects_complete_in_the_past(self):
        task = make_task()
        task.mark_published(0.0)
        task.mark_accepted(2.0)
        with pytest.raises(SimulationError):
            task.mark_completed(1.0)

    def test_rejects_double_accept(self):
        task = make_task()
        task.mark_published(0.0)
        task.mark_accepted(1.0)
        with pytest.raises(SimulationError):
            task.mark_accepted(2.0)

    def test_cancel_open_task(self):
        task = make_task()
        task.mark_published(0.0)
        task.cancel()
        assert task.state is TaskState.CANCELLED

    def test_cannot_cancel_done(self):
        task = make_task()
        task.mark_published(0.0)
        task.mark_accepted(1.0)
        task.mark_completed(2.0)
        with pytest.raises(SimulationError):
            task.cancel()

    def test_latency_unavailable_before_measurement(self):
        task = make_task()
        with pytest.raises(SimulationError):
            _ = task.onhold_latency
        task.mark_published(0.0)
        with pytest.raises(SimulationError):
            _ = task.processing_latency


class TestPublishedTaskValidation:
    def test_rejects_zero_price(self):
        with pytest.raises(ModelError):
            make_task(price=0)

    def test_rejects_fractional_price(self):
        with pytest.raises(ModelError):
            make_task(price=1.5)

    def test_rejects_negative_repetition_index(self):
        with pytest.raises(ModelError):
            make_task(repetition_index=-1)

    def test_uids_unique(self):
        a, b = make_task(), make_task()
        assert a.uid != b.uid
