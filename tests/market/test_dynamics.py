"""Unit tests for repro.market.dynamics (non-stationary markets)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.market import (
    AgentSimulator,
    AtomicTaskOrder,
    ConstantRate,
    NonstationaryWorkerPool,
    PiecewiseRate,
    SinusoidalRate,
    TaskType,
    sample_arrival_times,
)


class TestConstantRate:
    def test_rate_everywhere(self):
        profile = ConstantRate(3.0)
        assert profile.rate(0.0) == 3.0
        assert profile.rate(1e6) == 3.0
        assert profile.max_rate() == 3.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ModelError):
            ConstantRate(0.0)


class TestSinusoidalRate:
    def test_oscillates_around_base(self):
        profile = SinusoidalRate(base=2.0, amplitude=0.5, period=10.0)
        peak = profile.rate(2.5)   # sin = 1 at t = period/4
        trough = profile.rate(7.5)
        assert peak == pytest.approx(3.0)
        assert trough == pytest.approx(1.0)
        assert profile.max_rate() == pytest.approx(3.0)

    def test_mean_rate_is_base(self):
        profile = SinusoidalRate(base=2.0, amplitude=0.8, period=5.0)
        assert profile.mean_rate(50.0, samples=5000) == pytest.approx(2.0, rel=0.02)

    def test_always_positive(self):
        profile = SinusoidalRate(base=1.0, amplitude=0.99, period=1.0)
        ts = np.linspace(0, 3, 500)
        assert all(profile.rate(float(t)) > 0 for t in ts)

    def test_validation(self):
        with pytest.raises(ModelError):
            SinusoidalRate(base=0.0, amplitude=0.5, period=1.0)
        with pytest.raises(ModelError):
            SinusoidalRate(base=1.0, amplitude=1.0, period=1.0)
        with pytest.raises(ModelError):
            SinusoidalRate(base=1.0, amplitude=0.5, period=0.0)


class TestPiecewiseRate:
    def test_segments(self):
        profile = PiecewiseRate(breakpoints=[10.0, 20.0], rates=[1.0, 5.0, 2.0])
        assert profile.rate(5.0) == 1.0
        assert profile.rate(10.0) == 5.0
        assert profile.rate(15.0) == 5.0
        assert profile.rate(25.0) == 2.0
        assert profile.max_rate() == 5.0

    def test_validation(self):
        with pytest.raises(ModelError):
            PiecewiseRate(breakpoints=[1.0], rates=[1.0])  # length mismatch
        with pytest.raises(ModelError):
            PiecewiseRate(breakpoints=[2.0, 1.0], rates=[1.0, 1.0, 1.0])
        with pytest.raises(ModelError):
            PiecewiseRate(breakpoints=[1.0], rates=[1.0, 0.0])


class TestSampleArrivalTimes:
    def test_constant_rate_count(self, rng):
        times = sample_arrival_times(ConstantRate(4.0), horizon=500.0, rng=rng)
        # Poisson(4 * 500) = 2000 expected arrivals.
        assert len(times) == pytest.approx(2000, rel=0.08)
        assert all(0 <= t <= 500.0 for t in times)
        assert times == sorted(times)

    def test_sinusoidal_density_follows_intensity(self, rng):
        profile = SinusoidalRate(base=5.0, amplitude=0.8, period=100.0)
        times = np.array(
            sample_arrival_times(profile, horizon=100.0 * 200, rng=rng)
        )
        phase = (times % 100.0)
        # First half-period (sin > 0) must hold more arrivals.
        dense = np.sum(phase < 50.0)
        sparse = np.sum(phase >= 50.0)
        assert dense > sparse * 1.5

    def test_piecewise_counts(self, rng):
        profile = PiecewiseRate(breakpoints=[100.0], rates=[1.0, 10.0])
        times = np.array(
            sample_arrival_times(profile, horizon=200.0, rng=rng)
        )
        early = np.sum(times < 100.0)
        late = np.sum(times >= 100.0)
        assert late > early * 5

    def test_validation(self, rng):
        with pytest.raises(ModelError):
            sample_arrival_times(ConstantRate(1.0), horizon=0.0, rng=rng)


class TestNonstationaryWorkerPool:
    def test_mean_delay_matches_profile(self, rng):
        profile = ConstantRate(5.0)
        pool = NonstationaryWorkerPool(profile)
        delays = [pool.next_arrival_delay(rng) for _ in range(20_000)]
        assert np.mean(delays) == pytest.approx(0.2, rel=0.05)

    def test_drives_agent_simulator(self):
        profile = SinusoidalRate(base=10.0, amplitude=0.5, period=20.0)
        pool = NonstationaryWorkerPool(profile)
        sim = AgentSimulator(pool, seed=0)
        vote = TaskType("vote", processing_rate=2.0)
        orders = [
            AtomicTaskOrder(task_type=vote, prices=(2,), atomic_task_id=i)
            for i in range(5)
        ]
        result = sim.run_job(orders)
        assert result.makespan > 0

    def test_slow_regime_slows_acceptance(self):
        # Same mean? No: compare high-rate vs low-rate constant profiles.
        vote = TaskType("vote", processing_rate=5.0)

        def mean_makespan(rate, seed):
            pool = NonstationaryWorkerPool(ConstantRate(rate))
            sim = AgentSimulator(pool, seed=seed)
            order = AtomicTaskOrder(
                task_type=vote, prices=(2,) * 100, atomic_task_id=0
            )
            return sim.run_job([order]).makespan

        fast = np.mean([mean_makespan(10.0, s) for s in range(5)])
        slow = np.mean([mean_makespan(1.0, s) for s in range(5)])
        assert slow > fast

    def test_reset_clock(self, rng):
        pool = NonstationaryWorkerPool(ConstantRate(1.0))
        pool.next_arrival_delay(rng)
        pool.reset_clock()
        assert pool._clock == 0.0
        with pytest.raises(ModelError):
            pool.reset_clock(-1.0)
