"""Unit tests for repro.market.worker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.market import (
    GreedyPriceChoice,
    PriceProportionalChoice,
    PublishedTask,
    SoftmaxChoice,
    TaskType,
    WorkerPool,
)


def open_task(price: int, attractiveness: float = 1.0, uid_hint: int = 0):
    return PublishedTask(
        task_type=TaskType(
            f"t{attractiveness}", processing_rate=1.0, attractiveness=attractiveness
        ),
        price=price,
        atomic_task_id=uid_hint,
        repetition_index=0,
    )


class TestPriceProportionalChoice:
    def test_empty_board_returns_none(self, rng):
        assert PriceProportionalChoice().choose([], rng) is None

    def test_single_task_always_chosen_without_leave(self, rng):
        task = open_task(3)
        choice = PriceProportionalChoice(leave_weight=0.0)
        assert choice.choose([task], rng) is task

    def test_probabilities_proportional_to_price(self, rng):
        cheap, rich = open_task(1), open_task(9)
        choice = PriceProportionalChoice()
        picks = [choice.choose([cheap, rich], rng) for _ in range(4000)]
        rich_share = sum(1 for p in picks if p is rich) / len(picks)
        assert rich_share == pytest.approx(0.9, abs=0.03)

    def test_leave_option(self, rng):
        task = open_task(1)
        choice = PriceProportionalChoice(leave_weight=1.0)
        picks = [choice.choose([task], rng) for _ in range(4000)]
        leave_share = sum(1 for p in picks if p is None) / len(picks)
        assert leave_share == pytest.approx(0.5, abs=0.03)

    def test_attractiveness_scales_weight(self, rng):
        plain = open_task(5, attractiveness=1.0)
        dull = open_task(5, attractiveness=0.25)
        choice = PriceProportionalChoice()
        picks = [choice.choose([plain, dull], rng) for _ in range(4000)]
        plain_share = sum(1 for p in picks if p is plain) / len(picks)
        assert plain_share == pytest.approx(0.8, abs=0.03)

    def test_rejects_negative_leave_weight(self):
        with pytest.raises(ModelError):
            PriceProportionalChoice(leave_weight=-1.0)


class TestSoftmaxChoice:
    def test_prefers_higher_price(self, rng):
        cheap, rich = open_task(1), open_task(9)
        choice = SoftmaxChoice(beta=2.0, leave_utility=-100.0)
        picks = [choice.choose([cheap, rich], rng) for _ in range(2000)]
        rich_share = sum(1 for p in picks if p is rich) / len(picks)
        assert rich_share > 0.8

    def test_leave_utility_dominates(self, rng):
        task = open_task(1)
        choice = SoftmaxChoice(beta=1.0, leave_utility=100.0)
        assert choice.choose([task], rng) is None

    def test_rejects_nonpositive_beta(self):
        with pytest.raises(ModelError):
            SoftmaxChoice(beta=0.0)

    def test_empty_board(self, rng):
        assert SoftmaxChoice().choose([], rng) is None


class TestGreedyPriceChoice:
    def test_picks_highest_price(self, rng):
        a, b, c = open_task(2), open_task(8), open_task(5)
        assert GreedyPriceChoice().choose([a, b, c], rng) is b

    def test_tie_breaks_by_publication_order(self, rng):
        a = open_task(5)
        b = open_task(5)
        # a was created first → lower uid → preferred
        assert GreedyPriceChoice().choose([b, a], rng) is a

    def test_empty_board(self, rng):
        assert GreedyPriceChoice().choose([], rng) is None


class TestWorkerPool:
    def test_rejects_nonpositive_arrival_rate(self):
        with pytest.raises(ModelError):
            WorkerPool(arrival_rate=0.0)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ModelError):
            WorkerPool(arrival_rate=1.0, accuracy_jitter=-0.1)

    def test_arrival_delays_exponential(self, rng):
        pool = WorkerPool(arrival_rate=4.0)
        delays = [pool.next_arrival_delay(rng) for _ in range(20_000)]
        assert np.mean(delays) == pytest.approx(0.25, rel=0.03)

    def test_worker_ids_unique_and_increasing(self):
        pool = WorkerPool(arrival_rate=1.0)
        ids = [pool.new_worker_id() for _ in range(5)]
        assert ids == sorted(set(ids))

    def test_accuracy_no_jitter_passthrough(self, rng):
        pool = WorkerPool(arrival_rate=1.0)
        assert pool.worker_accuracy(0.9, rng) == 0.9

    def test_accuracy_jitter_stays_valid(self, rng):
        pool = WorkerPool(arrival_rate=1.0, accuracy_jitter=0.5)
        values = [pool.worker_accuracy(0.9, rng) for _ in range(2000)]
        assert all(0.0 < v <= 1.0 for v in values)
        assert len(set(values)) > 1
