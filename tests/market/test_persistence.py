"""Unit tests for repro.market.persistence (trace CSV round-trip)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.market import (
    AggregateSimulator,
    AtomicTaskOrder,
    LinearPricing,
    MarketModel,
    TaskType,
    TraceRecorder,
    read_records_csv,
    recorder_from_csv,
    write_records_csv,
)


@pytest.fixture
def trace(tmp_path):
    vote = TaskType("vote", processing_rate=2.0)
    sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=0)
    recorder = TraceRecorder()
    orders = [
        AtomicTaskOrder(task_type=vote, prices=(2, 3), atomic_task_id=i)
        for i in range(5)
    ]
    sim.run_job(orders, recorder=recorder)
    return recorder


class TestRoundTrip:
    def test_write_read_identity(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        n = write_records_csv(trace.records, path)
        assert n == 10
        loaded = read_records_csv(path)
        assert loaded == trace.records

    def test_recorder_from_csv_summary(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        write_records_csv(trace.records, path)
        recorder = recorder_from_csv(path)
        original = trace.summary()
        loaded = recorder.summary()
        assert loaded.count == original.count
        assert loaded.mean_overall == pytest.approx(original.mean_overall)
        assert recorder.job_completion_time() == pytest.approx(
            trace.job_completion_time()
        )

    def test_float_precision_preserved(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        write_records_csv(trace.records, path)
        loaded = read_records_csv(path)
        for a, b in zip(loaded, trace.records):
            assert a.onhold_latency == b.onhold_latency  # exact (repr)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_records_csv([], path) == 0
        assert read_records_csv(path) == []


class TestErrorHandling:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SimulationError):
            read_records_csv(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("")
        with pytest.raises(SimulationError):
            read_records_csv(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(SimulationError):
            read_records_csv(path)

    def test_malformed_value(self, tmp_path, trace):
        path = tmp_path / "bad.csv"
        write_records_csv(trace.records[:1], path)
        text = path.read_text().replace("vote", "vote").splitlines()
        parts = text[1].split(",")
        parts[4] = "not-a-price"
        path.write_text(text[0] + "\n" + ",".join(parts) + "\n")
        with pytest.raises(SimulationError):
            read_records_csv(path)

    def test_wrong_column_count(self, tmp_path, trace):
        path = tmp_path / "bad.csv"
        write_records_csv(trace.records[:1], path)
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\n1,2,3\n")
        with pytest.raises(SimulationError):
            read_records_csv(path)

    def test_inconsistent_timestamps(self, tmp_path):
        path = tmp_path / "bad.csv"
        from repro.market import TRACE_COLUMNS

        header = ",".join(TRACE_COLUMNS)
        # accepted before published
        path.write_text(header + "\n1,0,0,vote,2,5.0,1.0,9.0\n")
        with pytest.raises(SimulationError):
            read_records_csv(path)
