"""Unit tests for repro.market.simulator (both engines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError, SimulationError
from repro.market import (
    AgentSimulator,
    AggregateSimulator,
    AtomicTaskOrder,
    LinearPricing,
    MarketModel,
    TaskType,
    TraceRecorder,
    WorkerPool,
)


@pytest.fixture
def vote_type():
    return TaskType("vote", processing_rate=2.0, accuracy=0.9)


def order(task_type, prices, atomic_id=0, payload=None):
    return AtomicTaskOrder(
        task_type=task_type,
        prices=tuple(prices),
        atomic_task_id=atomic_id,
        payload=payload,
    )


class TestAtomicTaskOrder:
    def test_rejects_empty_prices(self, vote_type):
        with pytest.raises(ModelError):
            order(vote_type, [])

    def test_rejects_nonpositive_price(self, vote_type):
        with pytest.raises(ModelError):
            order(vote_type, [3, 0])

    def test_repetitions(self, vote_type):
        assert order(vote_type, [1, 2, 3]).repetitions == 3


class TestMarketModel:
    def test_single_model_applies_to_all(self, vote_type):
        market = MarketModel(LinearPricing(1.0, 1.0))
        assert market.onhold_rate(vote_type, 4) == pytest.approx(5.0)

    def test_attractiveness_scales_default(self):
        market = MarketModel(LinearPricing(1.0, 1.0))
        dull = TaskType("dull", processing_rate=1.0, attractiveness=0.5)
        assert market.onhold_rate(dull, 4) == pytest.approx(2.5)

    def test_per_type_table(self, vote_type):
        market = MarketModel({"vote": LinearPricing(2.0, 0.0)})
        assert market.onhold_rate(vote_type, 3) == pytest.approx(6.0)

    def test_missing_type_without_default_raises(self, vote_type):
        market = MarketModel({"other": LinearPricing(1.0, 1.0)})
        with pytest.raises(ModelError):
            market.onhold_rate(vote_type, 3)

    def test_mapping_with_default(self, vote_type):
        market = MarketModel(
            {"other": LinearPricing(1.0, 1.0)},
            default_pricing=LinearPricing(0.0, 7.0),
        )
        assert market.onhold_rate(vote_type, 3) == pytest.approx(7.0)

    def test_rejects_garbage(self):
        with pytest.raises(ModelError):
            MarketModel(42)
        with pytest.raises(ModelError):
            MarketModel({"a": "not a model"})


class TestAggregateSimulator:
    def test_empty_job_rejected(self, vote_type):
        sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=0)
        with pytest.raises(SimulationError):
            sim.run_job([])

    def test_single_task_latency_positive(self, vote_type):
        sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=0)
        result = sim.run_job([order(vote_type, [3])])
        assert result.makespan > 0
        assert result.total_paid == 3

    def test_records_all_repetitions(self, vote_type):
        sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=0)
        recorder = TraceRecorder()
        sim.run_job([order(vote_type, [2, 2, 2])], recorder=recorder)
        assert len(recorder.records) == 3
        assert {r.repetition_index for r in recorder.records} == {0, 1, 2}

    def test_sequential_repetitions_do_not_overlap(self, vote_type):
        sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=1)
        recorder = TraceRecorder()
        sim.run_job([order(vote_type, [2] * 5)], recorder=recorder)
        records = sorted(recorder.records, key=lambda r: r.repetition_index)
        for prev, nxt in zip(records, records[1:]):
            assert nxt.published_at == pytest.approx(prev.completed_at)

    def test_makespan_is_max_completion(self, vote_type):
        sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=2)
        result = sim.run_job(
            [order(vote_type, [2], atomic_id=i) for i in range(5)]
        )
        assert result.makespan == pytest.approx(
            max(result.per_atomic_completion.values())
        )

    def test_onhold_mean_matches_model(self, vote_type):
        # At price 4 the model says λ_o = 5 ⇒ mean on-hold 0.2.
        sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=3)
        recorder = TraceRecorder()
        sim.run_job(
            [order(vote_type, [4], atomic_id=i) for i in range(8000)],
            recorder=recorder,
        )
        assert recorder.summary().mean_onhold == pytest.approx(0.2, rel=0.05)

    def test_processing_mean_matches_type(self, vote_type):
        sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=4)
        recorder = TraceRecorder()
        sim.run_job(
            [order(vote_type, [4], atomic_id=i) for i in range(8000)],
            recorder=recorder,
        )
        assert recorder.summary().mean_processing == pytest.approx(0.5, rel=0.05)

    def test_deterministic_given_seed(self, vote_type):
        market = MarketModel(LinearPricing(1.0, 1.0))
        r1 = AggregateSimulator(market, seed=7).run_job([order(vote_type, [2, 3])])
        r2 = AggregateSimulator(market, seed=7).run_job([order(vote_type, [2, 3])])
        assert r1.makespan == r2.makespan

    def test_answers_sampled_from_payload(self, vote_type):
        class YesPayload:
            def sample_answer(self, rng, accuracy):
                return "yes"

        sim = AggregateSimulator(MarketModel(LinearPricing(1.0, 1.0)), seed=0)
        result = sim.run_job([order(vote_type, [1, 1], payload=YesPayload())])
        assert result.answers[0] == ["yes", "yes"]


class TestAgentSimulator:
    def test_job_completes(self, vote_type):
        pool = WorkerPool(arrival_rate=10.0)
        sim = AgentSimulator(pool, seed=0)
        result = sim.run_job(
            [order(vote_type, [2], atomic_id=i) for i in range(4)]
        )
        assert result.makespan > 0
        assert len(result.per_atomic_completion) == 4

    def test_total_paid(self, vote_type):
        pool = WorkerPool(arrival_rate=10.0)
        sim = AgentSimulator(pool, seed=0)
        result = sim.run_job([order(vote_type, [2, 3], atomic_id=0)])
        assert result.total_paid == 5

    def test_empty_job_rejected(self):
        sim = AgentSimulator(WorkerPool(arrival_rate=1.0), seed=0)
        with pytest.raises(SimulationError):
            sim.run_job([])

    def test_max_sim_time_guard(self, vote_type):
        pool = WorkerPool(arrival_rate=1e-6)
        sim = AgentSimulator(pool, seed=0, max_sim_time=1.0)
        with pytest.raises(SimulationError):
            sim.run_job([order(vote_type, [1])])

    def test_acceptance_rate_single_slot_matches_arrivals(self, vote_type):
        # With one open task and no leave option, acceptance rate = Λ.
        lam = 5.0
        pool = WorkerPool(arrival_rate=lam)
        sim = AgentSimulator(pool, seed=1)
        recorder = TraceRecorder()
        sim.run_job([order(vote_type, [1] * 2000)], recorder=recorder)
        mean_onhold = recorder.summary().mean_onhold
        assert mean_onhold == pytest.approx(1 / lam, rel=0.07)

    def test_deterministic_given_seed(self, vote_type):
        pool_args = dict(arrival_rate=5.0)
        r1 = AgentSimulator(WorkerPool(**pool_args), seed=3).run_job(
            [order(vote_type, [2, 2])]
        )
        r2 = AgentSimulator(WorkerPool(**pool_args), seed=3).run_job(
            [order(vote_type, [2, 2])]
        )
        assert r1.makespan == r2.makespan

    def test_worker_arrivals_recorded(self, vote_type):
        pool = WorkerPool(arrival_rate=10.0)
        recorder = TraceRecorder()
        AgentSimulator(pool, seed=0).run_job(
            [order(vote_type, [1])], recorder=recorder
        )
        assert len(recorder.worker_arrival_times) >= 1

    def test_rejects_bad_max_sim_time(self):
        with pytest.raises(ModelError):
            AgentSimulator(WorkerPool(arrival_rate=1.0), max_sim_time=0.0)
