"""Unit tests for repro.market.pricing."""

from __future__ import annotations

import math

import pytest

from repro.errors import ModelError
from repro.market import (
    PAPER_FIG2_MODELS,
    CallablePricing,
    LinearPricing,
    LogPricing,
    QuadraticPricing,
    fig2_model,
)


class TestLinearPricing:
    def test_rate(self):
        model = LinearPricing(slope=2.0, intercept=1.0)
        assert model(3) == pytest.approx(7.0)

    def test_is_linear(self):
        assert LinearPricing(1.0, 1.0).is_linear()

    def test_rejects_negative_slope(self):
        with pytest.raises(ModelError):
            LinearPricing(slope=-1.0, intercept=1.0)

    def test_rejects_flat_nonpositive(self):
        with pytest.raises(ModelError):
            LinearPricing(slope=0.0, intercept=0.0)

    def test_flat_positive_allowed(self):
        model = LinearPricing(slope=0.0, intercept=2.0)
        assert model(100) == 2.0

    def test_rejects_bad_price(self):
        model = LinearPricing(1.0, 1.0)
        with pytest.raises(ModelError):
            model(0)
        with pytest.raises(ModelError):
            model(-3)
        with pytest.raises(ModelError):
            model(float("inf"))

    def test_zero_intercept_positive_at_positive_price(self):
        model = LinearPricing(slope=1.0, intercept=0.0)
        assert model(1) == 1.0

    def test_name_contains_parameters(self):
        assert "2" in LinearPricing(2.0, 5.0).name


class TestQuadraticPricing:
    def test_rate(self):
        model = QuadraticPricing(coeff=1.0, intercept=1.0)
        assert model(3) == pytest.approx(10.0)

    def test_not_linear(self):
        assert not QuadraticPricing().is_linear()

    def test_rejects_nonpositive_coeff(self):
        with pytest.raises(ModelError):
            QuadraticPricing(coeff=0.0)


class TestLogPricing:
    def test_rate(self):
        model = LogPricing(scale=2.0)
        assert model(math.e - 1) == pytest.approx(2.0)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ModelError):
            LogPricing(scale=-1.0)

    def test_increasing(self):
        model = LogPricing()
        assert model(10) > model(5) > model(1)


class TestCallablePricing:
    def test_wraps_function(self):
        model = CallablePricing(lambda p: 3.0 * p, name="triple")
        assert model(2) == 6.0
        assert model.name == "triple"

    def test_rejects_noncallable(self):
        with pytest.raises(ModelError):
            CallablePricing(42)

    def test_nonpositive_rate_rejected_at_call(self):
        model = CallablePricing(lambda p: -1.0)
        with pytest.raises(ModelError):
            model(5)


class TestFig2Models:
    def test_all_six_cases_present(self):
        assert sorted(PAPER_FIG2_MODELS) == list("abcdef")

    @pytest.mark.parametrize(
        "case,price,expected",
        [
            ("a", 4, 5.0),        # 1 + p
            ("b", 4, 41.0),       # 10p + 1
            ("c", 4, 10.4),       # 0.1p + 10
            ("d", 4, 15.0),       # 3p + 3
            ("e", 4, 17.0),       # 1 + p²
            ("f", 4, math.log(5)),  # log(1 + p)
        ],
    )
    def test_paper_values(self, case, price, expected):
        assert fig2_model(case)(price) == pytest.approx(expected)

    def test_case_insensitive(self):
        assert fig2_model("A") is PAPER_FIG2_MODELS["a"]

    def test_unknown_case(self):
        with pytest.raises(ModelError):
            fig2_model("z")

    def test_linear_cases_flagged(self):
        for case in "abcd":
            assert fig2_model(case).is_linear()
        for case in "ef":
            assert not fig2_model(case).is_linear()
