"""Unit tests for repro.market.trace."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.market import (
    Event,
    EventKind,
    LatencySummary,
    PublishedTask,
    TaskRecord,
    TaskType,
    TraceRecorder,
)


def done_task(published=0.0, accepted=1.0, completed=3.0, **kwargs):
    defaults = dict(
        task_type=TaskType("vote", processing_rate=1.0),
        price=2,
        atomic_task_id=0,
        repetition_index=0,
    )
    defaults.update(kwargs)
    task = PublishedTask(**defaults)
    task.mark_published(published)
    task.mark_accepted(accepted)
    task.mark_completed(completed)
    return task


class TestTaskRecord:
    def test_from_task(self):
        record = TaskRecord.from_task(done_task())
        assert record.onhold_latency == pytest.approx(1.0)
        assert record.processing_latency == pytest.approx(2.0)
        assert record.overall_latency == pytest.approx(3.0)

    def test_rejects_incomplete_task(self):
        task = PublishedTask(
            task_type=TaskType("vote", processing_rate=1.0),
            price=1,
            atomic_task_id=0,
            repetition_index=0,
        )
        with pytest.raises(SimulationError):
            TaskRecord.from_task(task)


class TestLatencySummary:
    def test_from_records(self):
        records = [
            TaskRecord.from_task(done_task(completed=2.0)),
            TaskRecord.from_task(done_task(completed=4.0)),
        ]
        summary = LatencySummary.from_records(records)
        assert summary.count == 2
        assert summary.mean_onhold == pytest.approx(1.0)
        assert summary.mean_overall == pytest.approx(3.0)
        assert summary.max_overall == pytest.approx(4.0)

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            LatencySummary.from_records([])


class TestTraceRecorder:
    def test_records_tasks(self):
        recorder = TraceRecorder()
        recorder.on_task_done(done_task())
        assert len(recorder.records) == 1

    def test_worker_arrivals_tracked(self):
        recorder = TraceRecorder()
        recorder.on_event(Event(1.0, EventKind.WORKER_ARRIVED))
        recorder.on_event(Event(2.0, EventKind.TASK_PUBLISHED))
        assert recorder.worker_arrival_times == [1.0]

    def test_events_kept_only_when_requested(self):
        silent = TraceRecorder(keep_events=False)
        silent.on_event(Event(1.0, EventKind.WORKER_ARRIVED))
        assert silent.events == []
        chatty = TraceRecorder(keep_events=True)
        chatty.on_event(Event(1.0, EventKind.WORKER_ARRIVED))
        assert len(chatty.events) == 1

    def test_query_by_type(self):
        recorder = TraceRecorder()
        recorder.on_task_done(done_task())
        recorder.on_task_done(
            done_task(task_type=TaskType("other", processing_rate=1.0))
        )
        assert len(recorder.records_for_type("vote")) == 1
        assert len(recorder.records_for_type("other")) == 1
        assert recorder.records_for_type("missing") == []

    def test_query_by_price(self):
        recorder = TraceRecorder()
        recorder.on_task_done(done_task(price=2))
        recorder.on_task_done(done_task(price=5))
        assert len(recorder.records_for_price(5)) == 1

    def test_job_completion_time(self):
        recorder = TraceRecorder()
        recorder.on_task_done(done_task(completed=3.0))
        recorder.on_task_done(done_task(completed=9.0))
        assert recorder.job_completion_time() == 9.0

    def test_job_completion_requires_records(self):
        with pytest.raises(SimulationError):
            TraceRecorder().job_completion_time()

    def test_atomic_completion_time(self):
        recorder = TraceRecorder()
        recorder.on_task_done(done_task(atomic_task_id=3, completed=5.0))
        recorder.on_task_done(
            done_task(atomic_task_id=3, repetition_index=1, completed=8.0)
        )
        assert recorder.atomic_task_completion_time(3) == 8.0
        with pytest.raises(SimulationError):
            recorder.atomic_task_completion_time(99)

    def test_summary_filter(self):
        recorder = TraceRecorder()
        recorder.on_task_done(done_task())
        assert recorder.summary("vote").count == 1
