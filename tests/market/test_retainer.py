"""Unit tests for repro.market.retainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError, SimulationError
from repro.market import (
    AtomicTaskOrder,
    RetainerCostModel,
    RetainerSimulator,
    TaskType,
    TraceRecorder,
)


@pytest.fixture
def vote_type():
    return TaskType("vote", processing_rate=2.0)


def orders(vote_type, n_tasks=4, reps=2, price=1):
    return [
        AtomicTaskOrder(
            task_type=vote_type, prices=(price,) * reps, atomic_task_id=i
        )
        for i in range(n_tasks)
    ]


class TestRetainerCostModel:
    def test_total_cost(self):
        model = RetainerCostModel(wage_per_time=2.0, payment_per_answer=1)
        assert model.total_cost(pool_size=3, span=10.0, answers=5) == (
            2.0 * 3 * 10.0 + 5
        )

    def test_validation(self):
        with pytest.raises(ModelError):
            RetainerCostModel(wage_per_time=-1.0)
        with pytest.raises(ModelError):
            RetainerCostModel(wage_per_time=1.0, payment_per_answer=-1)
        model = RetainerCostModel(wage_per_time=1.0)
        with pytest.raises(ModelError):
            model.total_cost(0, 1.0, 1)
        with pytest.raises(ModelError):
            model.total_cost(1, -1.0, 1)


class TestRetainerSimulator:
    def test_completes_job(self, vote_type):
        sim = RetainerSimulator(pool_size=2, seed=0)
        result = sim.run_job(orders(vote_type))
        assert result.makespan > 0
        assert result.total_paid == 8  # 4 tasks × 2 reps × price 1

    def test_near_instant_acceptance_with_big_pool(self, vote_type):
        sim = RetainerSimulator(pool_size=100, reaction_mean=0.01, seed=1)
        recorder = TraceRecorder()
        sim.run_job(orders(vote_type, n_tasks=20, reps=1), recorder=recorder)
        assert recorder.summary().mean_onhold < 0.05

    def test_queueing_with_tiny_pool(self, vote_type):
        # One worker, 20 parallel tasks: later tasks must wait for the
        # worker, so mean on-hold is of the order of processing times.
        sim = RetainerSimulator(pool_size=1, reaction_mean=0.0, seed=2)
        recorder = TraceRecorder()
        sim.run_job(orders(vote_type, n_tasks=20, reps=1), recorder=recorder)
        assert recorder.summary().mean_onhold > 1.0

    def test_bigger_pool_is_faster(self, vote_type):
        def makespan(pool, seed):
            sim = RetainerSimulator(pool_size=pool, reaction_mean=0.0,
                                    seed=seed)
            return sim.run_job(orders(vote_type, n_tasks=30, reps=1)).makespan

        small = np.mean([makespan(1, s) for s in range(8)])
        large = np.mean([makespan(30, s) for s in range(8)])
        assert large < small / 3

    def test_sequential_repetitions(self, vote_type):
        sim = RetainerSimulator(pool_size=5, seed=3)
        recorder = TraceRecorder()
        sim.run_job(orders(vote_type, n_tasks=1, reps=4), recorder=recorder)
        records = sorted(recorder.records, key=lambda r: r.repetition_index)
        for prev, nxt in zip(records, records[1:]):
            assert nxt.published_at >= prev.completed_at - 1e-9

    def test_deterministic(self, vote_type):
        a = RetainerSimulator(pool_size=2, seed=9).run_job(orders(vote_type))
        b = RetainerSimulator(pool_size=2, seed=9).run_job(orders(vote_type))
        assert a.makespan == b.makespan

    def test_answers_sampled(self, vote_type):
        class Yes:
            def sample_answer(self, rng, accuracy):
                return True

        sim = RetainerSimulator(pool_size=2, seed=0)
        job = [
            AtomicTaskOrder(
                task_type=vote_type, prices=(1, 1), atomic_task_id=0,
                payload=Yes(),
            )
        ]
        result = sim.run_job(job)
        assert result.answers[0] == [True, True]

    def test_validation(self, vote_type):
        with pytest.raises(ModelError):
            RetainerSimulator(pool_size=0)
        with pytest.raises(ModelError):
            RetainerSimulator(pool_size=1, reaction_mean=-0.1)
        sim = RetainerSimulator(pool_size=1, seed=0)
        with pytest.raises(SimulationError):
            sim.run_job([])

    def test_processing_unchanged_by_retainer(self, vote_type):
        # The retainer changes recruitment, not the work: processing
        # means must match the task type.
        sim = RetainerSimulator(pool_size=50, seed=4)
        recorder = TraceRecorder()
        sim.run_job(orders(vote_type, n_tasks=2000, reps=1),
                    recorder=recorder)
        assert recorder.summary().mean_processing == pytest.approx(
            0.5, rel=0.05
        )
