"""The weight-tree open-task indexes: O(log n) arrivals with seeded
trajectories bit-identical to the historical linear scan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.market import (
    AgentSimulator,
    TaskType,
    TraceRecorder,
    WorkerPool,
)
from repro.market.simulator import AtomicTaskOrder
from repro.market.worker import (
    ChoiceModel,
    GreedyPriceChoice,
    PriceProportionalChoice,
    SoftmaxChoice,
    _FenwickTree,
    _LinearTaskIndex,
)


@pytest.fixture
def vote_type():
    return TaskType("vote", processing_rate=2.0)


class TestFenwickTree:
    def test_append_update_total(self):
        tree = _FenwickTree()
        for w in (1.0, 2.0, 3.0, 4.0):
            tree.append(w)
        assert tree.total() == pytest.approx(10.0)
        tree.update(1, 0.0)  # tombstone
        assert tree.total() == pytest.approx(8.0)
        assert len(tree) == 4

    def test_search_matches_cumsum_searchsorted(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            n = int(rng.integers(1, 50))
            weights = rng.uniform(0.0, 4.0, n)
            weights[rng.random(n) < 0.3] = 0.0  # tombstones
            tree = _FenwickTree()
            for w in weights:
                tree.append(float(w))
            total = weights.sum()
            if total <= 0:
                continue
            cumsum = np.cumsum(weights)
            for _ in range(5):
                u = float(rng.uniform(0, total * (1 - 1e-12)))
                expected = int(np.searchsorted(cumsum, u, side="right"))
                assert tree.search(u) == expected

    def test_search_skips_tombstones(self):
        tree = _FenwickTree()
        for w in (0.0, 5.0, 0.0, 3.0):
            tree.append(w)
        assert tree.search(0.0) == 1
        assert tree.search(5.0) == 3  # lands in the second live slot


def _run_trajectory(model, seed, n_tasks=30, force_linear=False):
    """Full agent-simulator trajectory under *model*."""
    if force_linear:
        # The historical path: materialize the insertion-ordered list
        # and call the model's linear choose() per arrival.
        model.make_index = lambda: _LinearTaskIndex(model)
    pool = WorkerPool(arrival_rate=5.0, choice_model=model)
    sim = AgentSimulator(pool, seed=seed)
    task_type = TaskType("vote", processing_rate=2.0)
    orders = [
        AtomicTaskOrder(
            task_type=task_type,
            prices=(1 + i % 5,) * (1 + i % 3),
            atomic_task_id=i,
        )
        for i in range(n_tasks)
    ]
    recorder = TraceRecorder(keep_events=True)
    result = sim.run_job(orders, recorder=recorder)
    records = [
        (r.atomic_task_id, r.repetition_index, r.accepted_at, r.completed_at)
        for r in recorder.records
    ]
    return result.makespan, result.per_atomic_completion, records


MODELS = [
    lambda: PriceProportionalChoice(),
    lambda: PriceProportionalChoice(leave_weight=3.0),
    lambda: SoftmaxChoice(beta=1.5, leave_utility=0.3),
    lambda: GreedyPriceChoice(),
]


class TestTrajectoryBitIdentity:
    @pytest.mark.parametrize("make_model", MODELS)
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_tree_matches_linear_reference(self, make_model, seed):
        """Seeded trajectories are bit-identical between the weight-tree
        index and the historical linear scan, model by model."""
        tree = _run_trajectory(make_model(), seed)
        linear = _run_trajectory(make_model(), seed, force_linear=True)
        assert tree == linear

    def test_custom_model_uses_linear_fallback(self, vote_type):
        class TakeFirst(ChoiceModel):
            def choose(self, open_tasks, rng):
                return open_tasks[0] if open_tasks else None

        makespan, per_atomic, records = _run_trajectory(TakeFirst(), seed=4)
        assert makespan > 0
        assert len(per_atomic) == 30


class TestIndexBookkeeping:
    def test_weighted_index_add_discard(self, vote_type):
        index = PriceProportionalChoice().make_index()
        from repro.market.task import PublishedTask

        tasks = [
            PublishedTask(
                task_type=vote_type,
                price=p,
                atomic_task_id=i,
                repetition_index=0,
            )
            for i, p in enumerate((3, 5, 2))
        ]
        for t in tasks:
            index.add(t)
        assert len(index) == 3
        index.discard(tasks[1])
        assert len(index) == 2
        index.discard(tasks[1])  # double discard is a no-op
        assert len(index) == 2
        rng = np.random.default_rng(0)
        chosen = index.choose(rng)
        assert chosen in (tasks[0], tasks[2])

    def test_empty_index_consumes_no_rng(self):
        index = PriceProportionalChoice().make_index()
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        assert index.choose(rng) is None
        assert rng.bit_generator.state == before

    def test_softmax_index_extreme_utilities_stay_finite(self):
        """Regression: the index must keep the linear path's max-shift
        stabilization — huge β·log(p·a) must not overflow, and deeply
        negative utilities must not underflow every task to weight 0."""
        from repro.market.task import PublishedTask

        # Overflow case: (1e4)^120 would exceed float range raw.
        rich = TaskType("rich", processing_rate=1.0, attractiveness=1e2)
        model = SoftmaxChoice(beta=120.0, leave_utility=0.0)
        index = model.make_index()
        task = PublishedTask(
            task_type=rich, price=100, atomic_task_id=0, repetition_index=0
        )
        index.add(task)  # must not raise OverflowError
        assert index.choose(np.random.default_rng(0)) is task

        # Underflow case: exp(-921) is 0.0 raw; the linear path still
        # picks the task because the leave option sits even lower.
        poor = TaskType("poor", processing_rate=1.0, attractiveness=0.01)
        model = SoftmaxChoice(beta=200.0, leave_utility=-1000.0)
        index = model.make_index()
        task = PublishedTask(
            task_type=poor, price=1, atomic_task_id=0, repetition_index=0
        )
        index.add(task)
        assert index.choose(np.random.default_rng(0)) is task
        assert model.choose([task], np.random.default_rng(0)) is task

    def test_softmax_index_tracks_departing_maximum(self):
        """Removing the dominant task re-shifts the reference so the
        remaining pool keeps sane weights."""
        from repro.market.task import PublishedTask

        model = SoftmaxChoice(beta=100.0, leave_utility=-1e6)
        index = model.make_index()
        big_type = TaskType("big", processing_rate=1.0, attractiveness=100.0)
        small_type = TaskType("small", processing_rate=1.0, attractiveness=0.1)
        big = PublishedTask(
            task_type=big_type, price=50, atomic_task_id=0, repetition_index=0
        )
        small = PublishedTask(
            task_type=small_type, price=1, atomic_task_id=1, repetition_index=0
        )
        index.add(big)
        index.add(small)
        index.discard(big)
        # After the max departs, `small` (now ~exp(-1081) against the
        # stale reference) must still be selectable.
        assert index.choose(np.random.default_rng(0)) is small

    def test_softmax_powered_weight_cache_hits_per_type_price(self):
        """Many repetitions of few (type, price) pairs must share one
        cached utility / powered weight, not recompute per task."""
        from repro.market.task import PublishedTask

        model = SoftmaxChoice(beta=1.5, leave_utility=0.2)
        index = model.make_index()
        task_type = TaskType("vote", processing_rate=2.0)
        tasks = [
            PublishedTask(
                task_type=task_type,
                price=1 + i % 3,
                atomic_task_id=i,
                repetition_index=0,
            )
            for i in range(30)
        ]
        for task in tasks:
            index.add(task)
        # 3 distinct prices of one type -> 3 cache rows, not 30.
        assert len(index._util_cache) == 3
        assert len(index._weight_cache) == 3
        # Cached weights must be exactly what the uncached formula gives.
        for (attractiveness, price), weight in index._weight_cache.items():
            import math

            utility = model.beta * math.log(price * attractiveness)
            assert weight == math.exp(min(utility - index._ref, 700.0))

    def test_softmax_weight_cache_invalidated_on_rebase(self):
        """A pool-composition change that moves the shift reference
        must drop the powered-weight table (utilities survive)."""
        from repro.market.task import PublishedTask

        model = SoftmaxChoice(beta=100.0, leave_utility=-1e6)
        index = model.make_index()
        small_type = TaskType("small", processing_rate=1.0, attractiveness=0.1)
        big_type = TaskType("big", processing_rate=1.0, attractiveness=100.0)
        small = PublishedTask(
            task_type=small_type, price=1, atomic_task_id=0, repetition_index=0
        )
        index.add(small)
        stale = dict(index._weight_cache)
        assert stale
        big = PublishedTask(
            task_type=big_type, price=50, atomic_task_id=1, repetition_index=0
        )
        index.add(big)  # new maximum -> rebase -> weight table rebuilt
        assert index._ref != -1e6
        key = (small_type.attractiveness, small.price)
        assert index._weight_cache[key] != stale[key]
        # Utility cache is reference-independent and must survive.
        assert key in index._util_cache
        # Behaviour unchanged: the dominant task is still chosen.
        assert index.choose(np.random.default_rng(0)) is big

    def test_softmax_cache_trajectory_bit_identity_many_duplicates(self):
        """A workload with heavy (type, price) duplication — the case
        the cache accelerates — must keep seeded trajectories bitwise
        equal to the historical linear scan."""
        model = SoftmaxChoice(beta=2.0, leave_utility=0.5)
        cached = _run_trajectory(model, seed=11, n_tasks=60)
        linear = _run_trajectory(
            SoftmaxChoice(beta=2.0, leave_utility=0.5),
            seed=11,
            n_tasks=60,
            force_linear=True,
        )
        assert cached == linear

    def test_greedy_index_prefers_price_then_publish_order(self, vote_type):
        from repro.market.task import PublishedTask

        index = GreedyPriceChoice().make_index()
        a = PublishedTask(
            task_type=vote_type, price=5, atomic_task_id=0, repetition_index=0
        )
        b = PublishedTask(
            task_type=vote_type, price=5, atomic_task_id=1, repetition_index=0
        )
        c = PublishedTask(
            task_type=vote_type, price=9, atomic_task_id=2, repetition_index=0
        )
        for t in (a, b, c):
            index.add(t)
        rng = np.random.default_rng(0)
        assert index.choose(rng) is c
        index.discard(c)
        assert index.choose(rng) is a  # earliest uid wins the tie
