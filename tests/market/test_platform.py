"""Unit tests for repro.market.platform."""

from __future__ import annotations

import pytest

from repro.errors import ModelError, SimulationError
from repro.market import (
    CrowdPlatform,
    LinearPricing,
    MarketModel,
    PublishRequest,
    TaskType,
    WorkerPool,
)


@pytest.fixture
def vote_type():
    return TaskType("vote", processing_rate=2.0)


@pytest.fixture
def platform():
    return CrowdPlatform(MarketModel(LinearPricing(1.0, 1.0)), seed=0)


class TestConstruction:
    def test_bad_engine_name(self):
        with pytest.raises(ModelError):
            CrowdPlatform(MarketModel(LinearPricing(1.0, 1.0)), engine="quantum")

    def test_agent_engine_requires_pool(self):
        with pytest.raises(ModelError):
            CrowdPlatform(MarketModel(LinearPricing(1.0, 1.0)), engine="agent")

    def test_agent_engine_with_pool(self, vote_type):
        platform = CrowdPlatform(
            MarketModel(LinearPricing(1.0, 1.0)),
            engine="agent",
            pool=WorkerPool(arrival_rate=10.0),
            seed=0,
        )
        result = platform.run_batch(
            [PublishRequest(task_type=vote_type, prices=[2])]
        )
        assert result.makespan > 0

    def test_rejects_bad_budget(self):
        with pytest.raises(ModelError):
            CrowdPlatform(MarketModel(LinearPricing(1.0, 1.0)), budget=-5)

    def test_with_linear_market_helper(self, vote_type):
        platform = CrowdPlatform.with_linear_market(1.0, 1.0, seed=0)
        result = platform.run_batch(
            [PublishRequest(task_type=vote_type, prices=[1, 2])]
        )
        assert result.total_paid == 3

    def test_with_linear_market_agent_needs_rate(self):
        with pytest.raises(ModelError):
            CrowdPlatform.with_linear_market(1.0, 1.0, engine="agent")


class TestBudgetEnforcement:
    def test_budget_tracked(self, vote_type):
        platform = CrowdPlatform(
            MarketModel(LinearPricing(1.0, 1.0)), budget=10, seed=0
        )
        platform.run_batch([PublishRequest(task_type=vote_type, prices=[3, 3])])
        assert platform.spent == 6
        assert platform.remaining_budget == 4

    def test_overspend_rejected(self, vote_type):
        platform = CrowdPlatform(
            MarketModel(LinearPricing(1.0, 1.0)), budget=5, seed=0
        )
        with pytest.raises(SimulationError):
            platform.run_batch(
                [PublishRequest(task_type=vote_type, prices=[3, 3])]
            )

    def test_no_budget_means_unlimited(self, platform, vote_type):
        assert platform.remaining_budget is None
        platform.run_batch(
            [PublishRequest(task_type=vote_type, prices=[100])]
        )


class TestRunBatch:
    def test_empty_batch_rejected(self, platform):
        with pytest.raises(SimulationError):
            platform.run_batch([])

    def test_atomic_ids_sequential_across_batches(self, platform, vote_type):
        r1 = platform.run_batch(
            [PublishRequest(task_type=vote_type, prices=[1])] * 2
        )
        r2 = platform.run_batch(
            [PublishRequest(task_type=vote_type, prices=[1])]
        )
        assert sorted(r1.answers) == [0, 1]
        assert sorted(r2.answers) == [2]

    def test_answers_lists_have_one_entry_per_repetition(
        self, platform, vote_type
    ):
        result = platform.run_batch(
            [PublishRequest(task_type=vote_type, prices=[1, 1, 1])]
        )
        (answers,) = result.answers.values()
        assert len(answers) == 3
