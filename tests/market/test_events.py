"""Unit tests for repro.market.events."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.market import Event, EventKind, EventQueue


class TestEvent:
    def test_rejects_negative_time(self):
        with pytest.raises(SimulationError):
            Event(-1.0, EventKind.WORKER_ARRIVED)

    def test_rejects_nonfinite_time(self):
        with pytest.raises(SimulationError):
            Event(float("nan"), EventKind.WORKER_ARRIVED)

    def test_payload_passthrough(self):
        ev = Event(1.0, EventKind.TASK_PUBLISHED, payload={"a": 1})
        assert ev.payload == {"a": 1}


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(Event(3.0, EventKind.WORKER_ARRIVED))
        q.push(Event(1.0, EventKind.WORKER_ARRIVED))
        q.push(Event(2.0, EventKind.WORKER_ARRIVED))
        times = [q.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_fifo_tie_break(self):
        q = EventQueue()
        first = Event(1.0, EventKind.WORKER_ARRIVED, payload="first")
        second = Event(1.0, EventKind.WORKER_ARRIVED, payload="second")
        q.push(first)
        q.push(second)
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_now_advances(self):
        q = EventQueue()
        assert q.now == 0.0
        q.push(Event(2.5, EventKind.PROBE_TICK))
        q.pop()
        assert q.now == 2.5

    def test_rejects_scheduling_in_the_past(self):
        q = EventQueue()
        q.push(Event(5.0, EventKind.PROBE_TICK))
        q.pop()
        with pytest.raises(SimulationError):
            q.push(Event(4.0, EventKind.PROBE_TICK))

    def test_pop_empty_raises(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.pop()

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.push(Event(1.0, EventKind.PROBE_TICK))
        assert q
        assert len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(Event(7.0, EventKind.PROBE_TICK))
        assert q.peek_time() == 7.0
        assert len(q) == 1  # peek does not consume

    def test_clear_keeps_clock(self):
        q = EventQueue()
        q.push(Event(1.0, EventKind.PROBE_TICK))
        q.pop()
        q.push(Event(9.0, EventKind.PROBE_TICK))
        q.clear()
        assert len(q) == 0
        assert q.now == 1.0
