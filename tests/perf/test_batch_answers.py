"""Batch answer/quality sampling: BatchAggregateSimulator.run_job and
the platform's "batch" engine serving crowd-DB queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowddb.aggregate import PredicateQuestion
from repro.errors import SimulationError
from repro.market import (
    LinearPricing,
    MarketModel,
    TaskType,
    TraceRecorder,
)
from repro.market.platform import CrowdPlatform, PublishRequest
from repro.market.simulator import AggregateSimulator, AtomicTaskOrder
from repro.perf import BatchAggregateSimulator


@pytest.fixture
def market():
    return MarketModel(LinearPricing(slope=1.0, intercept=1.0))


@pytest.fixture
def vote_type():
    return TaskType("vote", processing_rate=2.0, accuracy=0.9)


def _orders(vote_type, n=8, with_payload=True):
    return [
        AtomicTaskOrder(
            task_type=vote_type,
            prices=(2,) * (1 + i % 3),
            atomic_task_id=i,
            payload=PredicateQuestion(item=i, truth=bool(i % 2))
            if with_payload
            else None,
        )
        for i in range(n)
    ]


class TestBatchRunJob:
    def test_answers_sampled_per_repetition(self, market, vote_type):
        sim = BatchAggregateSimulator(market, seed=0)
        orders = _orders(vote_type)
        result = sim.run_job(orders)
        for order in orders:
            got = result.answers[order.atomic_task_id]
            assert len(got) == order.repetitions
            assert all(isinstance(a, (bool, np.bool_)) for a in got)

    def test_deterministic_per_seed(self, market, vote_type):
        a = BatchAggregateSimulator(market, seed=7).run_job(_orders(vote_type))
        b = BatchAggregateSimulator(market, seed=7).run_job(_orders(vote_type))
        assert a.makespan == b.makespan
        assert a.answers == b.answers
        assert a.per_atomic_completion == b.per_atomic_completion

    def test_trace_and_accounting_match_scalar_shape(self, market, vote_type):
        orders = _orders(vote_type)
        recorder = TraceRecorder()
        result = BatchAggregateSimulator(market, seed=1).run_job(
            orders, recorder=recorder
        )
        assert len(recorder.records) == sum(o.repetitions for o in orders)
        assert result.total_paid == sum(sum(o.prices) for o in orders)
        assert result.makespan == max(result.per_atomic_completion.values())

    def test_statistically_agrees_with_scalar_engine(self, market, vote_type):
        """Same aggregate model, different stream layout: means agree."""
        orders = _orders(vote_type, n=4, with_payload=False)
        scalar = np.mean(
            [
                AggregateSimulator(market, seed=s).run_job(orders).makespan
                for s in range(300)
            ]
        )
        batch = np.mean(
            [
                BatchAggregateSimulator(market, seed=10_000 + s)
                .run_job(orders)
                .makespan
                for s in range(300)
            ]
        )
        assert batch == pytest.approx(scalar, rel=0.1)

    def test_parallel_mode(self, market, vote_type):
        result = BatchAggregateSimulator(market, seed=2).run_job(
            _orders(vote_type), repetition_mode="parallel"
        )
        assert result.makespan > 0

    def test_rejects_bad_mode_and_empty_job(self, market, vote_type):
        sim = BatchAggregateSimulator(market, seed=0)
        with pytest.raises(SimulationError):
            sim.run_job(_orders(vote_type), repetition_mode="sideways")
        with pytest.raises(SimulationError):
            sim.run_job([])

    def test_sample_makespans_still_rejects_payloads(self, market, vote_type):
        sim = BatchAggregateSimulator(market, seed=0)
        with pytest.raises(SimulationError):
            sim.sample_makespans(_orders(vote_type), 10)


class TestBatchPlatform:
    def test_run_batch_with_answers(self, market, vote_type):
        platform = CrowdPlatform(market, engine="batch", seed=0)
        requests = [
            PublishRequest(
                task_type=vote_type,
                prices=(2, 2),
                payload=PredicateQuestion(item=i, truth=True),
            )
            for i in range(5)
        ]
        result = platform.run_batch(requests)
        assert platform.engine_name == "batch"
        assert set(result.answers) == set(range(5))
        assert all(len(v) == 2 for v in result.answers.values())

    def test_crowddb_filter_runs_on_batch_engine(self, vote_type):
        from repro.crowddb.engine import CrowdQueryEngine
        from repro.crowddb.operators.filter import CrowdFilter

        market = MarketModel(LinearPricing(slope=1.0, intercept=1.0))
        platform = CrowdPlatform(market, engine="batch", seed=3)
        engine = CrowdQueryEngine(
            platform, pricing={"vote": LinearPricing(slope=1.0, intercept=1.0)}
        )
        operator = CrowdFilter(
            items=list(range(6)),
            truths=[x % 2 == 0 for x in range(6)],
            task_type=vote_type,
            repetitions=3,
        )
        outcome = engine.execute(operator, budget=60)
        assert outcome.engine == "batch"
        assert outcome.latency > 0
        assert set(outcome.result) <= set(range(6))
