"""Bit-identity of the batched deadline kernels vs the seed oracle.

The contract: :func:`repro.core.deadline.min_cost_for_deadline`,
``latency_quantile`` and ``completion_probability`` route through
:mod:`repro.perf.deadline` (memoized per-(group, price) terms over the
shared weight ladders) but must return results **bit-identical** to
the seed scalar comparator preserved in :mod:`repro.perf.reference`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import HTuningProblem, TaskSpec
from repro.core import (
    completion_probability,
    latency_quantile,
    min_cost_for_deadline,
    min_cost_for_deadline_sweep,
)
from repro.errors import ModelError
from repro.market import LinearPricing
from repro.perf import clear_phase_caches
from repro.perf.deadline import (
    DeadlineKernel,
    available_deadline_comparators,
    get_deadline_comparator,
    register_deadline_comparator,
)
from repro.perf.reference import (
    reference_completion_probability,
    reference_latency_quantile,
    reference_min_cost_for_deadline,
)


def random_tasks(rng, max_groups=4):
    tasks, tid = [], 0
    for gi in range(int(rng.integers(1, max_groups + 1))):
        reps = int(rng.integers(1, 4))
        count = int(rng.integers(1, 4))
        proc = float(rng.uniform(0.3, 5.0))
        pricing = LinearPricing(
            float(rng.uniform(0.2, 2.0)), float(rng.uniform(0.1, 2.0))
        )
        for _ in range(count):
            tasks.append(
                TaskSpec(tid, reps, pricing, proc, type_name=f"g{gi}")
            )
            tid += 1
    return tasks


class TestKernelBitIdentity:
    """Property tests: random instances, exact equality with the oracle."""

    def test_min_cost_matches_oracle_on_random_instances(self):
        rng = np.random.default_rng(1234)
        for trial in range(25):
            tasks = random_tasks(rng)
            deadline = float(rng.uniform(0.4, 8.0))
            confidence = float(rng.uniform(0.5, 0.99))
            max_price = int(rng.integers(3, 40))
            include = bool(rng.integers(0, 2))
            batched = min_cost_for_deadline(
                tasks,
                deadline,
                confidence,
                max_price=max_price,
                include_processing=include,
            )
            oracle = reference_min_cost_for_deadline(
                tasks,
                deadline,
                confidence,
                max_price=max_price,
                include_processing=include,
            )
            assert batched.group_prices == oracle.group_prices, trial
            assert batched.cost == oracle.cost, trial
            assert (
                batched.achieved_probability == oracle.achieved_probability
            ), trial
            assert batched.allocation == oracle.allocation, trial

    def test_quantile_and_completion_match_oracle(self):
        rng = np.random.default_rng(99)
        for trial in range(20):
            tasks = random_tasks(rng)
            problem = HTuningProblem(tasks, budget=10**7)
            prices = {
                g.key: int(rng.integers(1, 8)) for g in problem.groups()
            }
            confidence = float(rng.uniform(0.3, 0.99))
            include = bool(rng.integers(0, 2))
            assert latency_quantile(
                problem, prices, confidence, include_processing=include
            ) == reference_latency_quantile(
                problem, prices, confidence, include_processing=include
            ), trial
            deadline = float(rng.uniform(0.1, 10.0))
            assert completion_probability(
                problem, prices, deadline, include_processing=include
            ) == reference_completion_probability(
                problem, prices, deadline, include_processing=include
            ), trial

    def test_identity_survives_cold_and_warm_caches(self):
        """Memoized ladders extended by earlier calls must not change
        later results (extension-history independence)."""
        rng = np.random.default_rng(7)
        tasks = random_tasks(rng)
        clear_phase_caches()
        cold = min_cost_for_deadline(tasks, 2.0, 0.9, max_price=25)
        # Stretch the shared ladders with unrelated wide evaluations.
        min_cost_for_deadline(tasks, 50.0, 0.9, max_price=25)
        min_cost_for_deadline(tasks, 0.2, 0.9, max_price=25)
        warm = min_cost_for_deadline(tasks, 2.0, 0.9, max_price=25)
        assert warm.group_prices == cold.group_prices
        assert warm.achieved_probability == cold.achieved_probability

    def test_sweep_matches_oracle_per_deadline(self):
        rng = np.random.default_rng(55)
        tasks = random_tasks(rng)
        deadlines = sorted(float(d) for d in rng.uniform(0.5, 9.0, 6))
        swept = min_cost_for_deadline_sweep(
            tasks, deadlines, confidence=0.85, max_price=30
        )
        for deadline in deadlines:
            oracle = reference_min_cost_for_deadline(
                tasks, deadline, 0.85, max_price=30
            )
            assert swept[deadline].group_prices == oracle.group_prices
            assert (
                swept[deadline].achieved_probability
                == oracle.achieved_probability
            )


class TestDeadlineKernel:
    """Unit behaviour of the kernel itself."""

    @pytest.fixture
    def groups(self):
        pricing = LinearPricing(1.0, 1.0)
        tasks = [
            TaskSpec(0, 2, pricing, 2.0, type_name="a"),
            TaskSpec(1, 2, pricing, 2.0, type_name="a"),
            TaskSpec(2, 3, pricing, 1.0, type_name="b"),
        ]
        return HTuningProblem(tasks, budget=10_000).groups()

    def test_group_cdf_matches_direct_evaluation(self, groups):
        from repro.stats.phase_type import hypoexponential_cdf

        kernel = DeadlineKernel(groups, deadline=2.0)
        for gi, g in enumerate(groups):
            for price in (1, 2, 5):
                rates = [g.onhold_rate(price)] * g.repetitions
                rates += [g.processing_rate] * g.repetitions
                member = float(hypoexponential_cdf(rates, 2.0))
                expected = member**g.size if member > 0 else 0.0
                assert kernel.group_cdf(gi, price) == expected

    def test_memoization_counts(self, groups):
        kernel = DeadlineKernel(groups, deadline=2.0)
        kernel.group_cdf(0, 3)
        before = kernel.cache_stats()["group_cdf_entries"]
        kernel.group_cdf(0, 3)
        assert kernel.cache_stats()["group_cdf_entries"] == before
        assert kernel.cache_stats()["warmed_prices"][0] >= 3

    def test_completion_probability_override(self, groups):
        kernel = DeadlineKernel(groups, deadline=2.0)
        prices = np.array([3, 2])
        direct = kernel.completion_probability(np.array([2, 2]))
        via_override = kernel.completion_probability(
            prices, override=(0, 2)
        )
        assert via_override == direct

    def test_processing_ceiling_requires_processing(self, groups):
        kernel = DeadlineKernel(groups, 2.0, include_processing=False)
        with pytest.raises(ModelError):
            kernel.processing_ceiling()

    def test_validation(self, groups):
        with pytest.raises(ModelError):
            DeadlineKernel((), 1.0)
        with pytest.raises(ModelError):
            DeadlineKernel(groups, -1.0)


class TestComparatorRegistry:
    def test_builtins_resolve(self):
        assert get_deadline_comparator(None) is min_cost_for_deadline
        assert get_deadline_comparator("batched") is min_cost_for_deadline
        assert (
            get_deadline_comparator("reference")
            is reference_min_cost_for_deadline
        )
        assert {"batched", "reference"} <= set(
            available_deadline_comparators()
        )

    def test_callable_passes_through(self):
        def custom(*args, **kwargs):  # pragma: no cover - never called
            raise AssertionError

        assert get_deadline_comparator(custom) is custom

    def test_unknown_name_rejected(self):
        with pytest.raises(ModelError):
            get_deadline_comparator("nope")

    def test_register_and_replace(self):
        def custom(*args, **kwargs):  # pragma: no cover - never called
            raise AssertionError

        name = "test-custom-comparator"
        register_deadline_comparator(name, custom)
        try:
            assert get_deadline_comparator(name) is custom
            assert name in available_deadline_comparators()
            with pytest.raises(ModelError):
                register_deadline_comparator(name, custom)
            register_deadline_comparator(name, custom, replace=True)
            with pytest.raises(ModelError):
                register_deadline_comparator("batched", custom)
        finally:
            from repro.perf import deadline as deadline_mod

            deadline_mod._COMPARATORS.pop(name, None)

    def test_default_comparator_advertises_sweep(self):
        comparator = get_deadline_comparator("batched")
        assert comparator.deadline_sweep is min_cost_for_deadline_sweep


class TestQuantileWindowModes:
    """Per-point windows: batch == per-confidence evaluation, bitwise."""

    def test_batch_bitwise_equals_per_point_on_random_instances(self):
        """Property: for random instances and confidence vectors, the
        default per-point-window batch is exactly the vector of scalar
        per-confidence quantiles — not just tolerance-level close."""
        from repro.core.deadline import latency_quantile_batch

        rng = np.random.default_rng(4321)
        for trial in range(15):
            tasks = random_tasks(rng)
            problem = HTuningProblem(tasks, budget=10**7)
            prices = {
                g.key: int(rng.integers(1, 8)) for g in problem.groups()
            }
            include = bool(rng.integers(0, 2))
            confidences = sorted(
                float(c)
                for c in rng.uniform(0.05, 0.995, int(rng.integers(2, 7)))
            )
            clear_phase_caches()
            batch = latency_quantile_batch(
                problem, prices, confidences, include_processing=include
            )
            singles = np.array(
                [
                    latency_quantile(
                        problem, prices, c, include_processing=include
                    )
                    for c in confidences
                ]
            )
            assert np.array_equal(batch, singles), trial

    def test_chunked_mode_stays_tolerance_close(self):
        """The legacy unioned-window mode is kept selectable and agrees
        with per-point evaluation at truncation-tolerance level."""
        from repro.core.deadline import latency_quantile_batch

        rng = np.random.default_rng(7)
        tasks = random_tasks(rng)
        problem = HTuningProblem(tasks, budget=10**7)
        prices = {g.key: 3 for g in problem.groups()}
        confidences = [0.5, 0.8, 0.9, 0.97]
        per_point = latency_quantile_batch(problem, prices, confidences)
        chunked = latency_quantile_batch(
            problem, prices, confidences, window_mode="chunked"
        )
        assert np.allclose(per_point, chunked, rtol=1e-9, atol=1e-9)

    def test_single_confidence_unchanged_by_mode(self):
        """Length-1 vectors follow the exact scalar float path in both
        modes — the seed bit-identity contract is untouched."""
        from repro.core.deadline import latency_quantile_batch

        rng = np.random.default_rng(12)
        tasks = random_tasks(rng)
        problem = HTuningProblem(tasks, budget=10**7)
        prices = {g.key: 2 for g in problem.groups()}
        reference = reference_latency_quantile(problem, prices, 0.9)
        for mode in ("per-point", "chunked"):
            out = latency_quantile_batch(
                problem, prices, [0.9], window_mode=mode
            )
            assert float(out[0]) == reference

    def test_unknown_window_mode_rejected(self):
        from repro.perf.deadline import deadline_quantile_bisection

        rng = np.random.default_rng(5)
        tasks = random_tasks(rng)
        problem = HTuningProblem(tasks, budget=10**7)
        prices = {g.key: 2 for g in problem.groups()}
        with pytest.raises(ModelError):
            deadline_quantile_bisection(
                problem.groups(), prices, [0.9], window_mode="windowed"
            )
