"""Bit-exactness of the array-based DPs against the seed implementations.

The vectorized engines must return *identical* price vectors — not just
equal objective values — on randomized instances, including the
multi-budget sweep and the Algorithm-3 closeness scan.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import HTuningProblem, TaskSpec
from repro.core.heterogeneous import heterogeneous_algorithm
from repro.core.latency import group_onhold_latency
from repro.core.repetition import budget_indexed_dp
from repro.errors import InfeasibleAllocationError, ModelError
from repro.market import LinearPricing
from repro.perf.dp import (
    budget_indexed_dp_fast,
    budget_indexed_dp_sweep,
    group_cost_table,
)
from repro.perf.reference import (
    reference_budget_indexed_dp,
    reference_heterogeneous_prices,
)


def random_problem(rng, hetero=False):
    n_groups = int(rng.integers(1, 5))
    tasks, tid = [], 0
    for gi in range(n_groups):
        reps = int(rng.integers(1, 5))
        count = int(rng.integers(1, 5))
        proc = float(rng.uniform(0.5, 4.0))
        pricing = LinearPricing(
            slope=float(rng.uniform(0.2, 5.0)),
            intercept=float(rng.uniform(0.2, 3.0)),
        )
        name = f"t{gi}" if hetero else "t0"
        for _ in range(count):
            tasks.append(
                TaskSpec(tid, reps, pricing, proc, type_name=name)
            )
            tid += 1
    start = sum(t.repetitions for t in tasks)
    budget = start + int(rng.integers(0, 150))
    return HTuningProblem(tasks, budget)


class TestBudgetIndexedDP:
    @pytest.mark.parametrize("seed", range(8))
    def test_identical_prices_on_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(6):
            problem = random_problem(rng, hetero=True)
            ref = reference_budget_indexed_dp(
                problem.groups(), problem.budget, group_onhold_latency
            )
            fast = budget_indexed_dp_fast(
                problem.groups(), problem.budget, group_onhold_latency
            )
            assert ref == fast

    def test_public_entrypoint_uses_fast_path(self, linear_pricing):
        tasks = [TaskSpec(i, 2, linear_pricing, 2.0) for i in range(4)]
        problem = HTuningProblem(tasks, 60)
        ref = reference_budget_indexed_dp(
            problem.groups(), 60, group_onhold_latency
        )
        assert budget_indexed_dp(problem.groups(), 60, group_onhold_latency) == ref

    def test_nonconvex_cost_function_still_identical(self, linear_pricing):
        # The DP contract does not require convexity; equivalence must
        # hold for any decreasing-ish (even oscillating) objective.
        tasks = [
            TaskSpec(i, 1 + i % 2, linear_pricing, 2.0) for i in range(5)
        ]
        problem = HTuningProblem(tasks, 50)

        def wobble(group, price):
            return (10.0 / price) + math.sin(price * group.unit_cost)

        assert reference_budget_indexed_dp(
            problem.groups(), 50, wobble
        ) == budget_indexed_dp_fast(problem.groups(), 50, wobble)

    def test_sweep_matches_per_budget_runs(self, linear_pricing):
        tasks = [
            TaskSpec(i, 1 + i % 3, linear_pricing, 2.0, type_name=f"t{i % 2}")
            for i in range(6)
        ]
        problem = HTuningProblem(tasks, 300)
        budgets = [15, 40, 77, 150, 300]
        sweep = budget_indexed_dp_sweep(
            problem.groups(), budgets, group_onhold_latency
        )
        assert set(sweep) == set(budgets)
        for b in budgets:
            assert sweep[b] == reference_budget_indexed_dp(
                problem.groups(), b, group_onhold_latency
            )

    def test_sweep_rejects_infeasible_budget(self, linear_pricing):
        tasks = [TaskSpec(i, 2, linear_pricing, 2.0) for i in range(4)]
        problem = HTuningProblem(tasks, 100)
        with pytest.raises(InfeasibleAllocationError):
            budget_indexed_dp_sweep(
                problem.groups(), [100, 7], group_onhold_latency
            )

    def test_validation(self):
        with pytest.raises(ModelError):
            budget_indexed_dp_fast((), 10, lambda g, p: 0.0)
        with pytest.raises(ModelError):
            budget_indexed_dp_sweep((), [], lambda g, p: 0.0)

    def test_cost_table_values(self, linear_pricing):
        tasks = [TaskSpec(0, 2, linear_pricing, 2.0)]
        (group,) = HTuningProblem(tasks, 20).groups()
        table = group_cost_table(group, 4, group_onhold_latency)
        expected = [group_onhold_latency(group, p) for p in range(1, 5)]
        np.testing.assert_array_equal(table, expected)
        with pytest.raises(ModelError):
            group_cost_table(group, 0, group_onhold_latency)


class TestHeterogeneousScan:
    @pytest.mark.parametrize("seed", range(6))
    def test_identical_prices_on_random_instances(self, seed):
        rng = np.random.default_rng(100 + seed)
        for _ in range(4):
            problem = random_problem(rng, hetero=True)
            ref = reference_heterogeneous_prices(problem)
            result = heterogeneous_algorithm(problem, return_details=True)
            assert result.group_prices == ref


class TestClosenessSweep:
    """The one-pass HA sweep must be bit-identical per budget (PR 2
    follow-up): the shared trajectory evaluates candidate objectives
    once, but every tie decision replays the seed's float expression
    against each budget's own utopia point."""

    @pytest.mark.parametrize("seed", range(6))
    def test_sweep_matches_seed_oracle_per_budget(self, seed):
        from repro.core.heterogeneous import heterogeneous_algorithm_sweep
        from repro.workloads import ProblemFamily

        rng = np.random.default_rng(500 + seed)
        for _ in range(3):
            problem = random_problem(rng, hetero=True)
            family = ProblemFamily(problem.tasks)
            start = family.min_feasible_budget
            budgets = sorted(
                {start + int(b) for b in rng.integers(0, 120, size=5)}
            )
            sweep = heterogeneous_algorithm_sweep(family, budgets)
            for b in budgets:
                member = family.problem_at(b)
                ref = reference_heterogeneous_prices(member)
                result = heterogeneous_algorithm(member, return_details=True)
                assert result.group_prices == ref
                assert sweep[b] == result.allocation

    def test_adversarial_utopias_fork_to_single_scan_results(
        self, linear_pricing
    ):
        # Inflated utopia coordinates flip the closeness ordering (all
        # feasible points sit below them, so "closer" means *larger*
        # objective), guaranteeing cross-budget disagreement at the
        # first level — the fork path must still reproduce each
        # budget's private scan exactly.
        from repro.core.latency import group_processing_latency
        from repro.perf.dp import (
            heterogeneous_closeness_sweep,
            heterogeneous_price_scan,
        )

        tasks = [
            TaskSpec(i, 1 + i % 3, linear_pricing, 2.0, type_name=f"t{i % 3}")
            for i in range(6)
        ]
        problem = HTuningProblem(tasks, 200)
        groups = problem.groups()
        unit_costs = tuple(g.unit_cost for g in groups)
        phase2 = tuple(group_processing_latency(g) for g in groups)
        residuals = [11, 25, 40]
        utopias = [(0.0, 0.0), (1e6, 1e6), (3.0, 7.0)]
        finals = heterogeneous_closeness_sweep(
            groups,
            residuals,
            unit_costs,
            group_onhold_latency,
            phase2,
            utopias,
        )
        for k, (r, (u1, u2)) in enumerate(zip(residuals, utopias)):
            single, _ = heterogeneous_price_scan(
                groups, r, unit_costs, group_onhold_latency, phase2, u1, u2
            )
            assert finals[k] == single

    def test_validation(self, linear_pricing):
        from repro.core.latency import group_processing_latency
        from repro.perf.dp import heterogeneous_closeness_sweep

        tasks = [TaskSpec(0, 2, linear_pricing, 2.0)]
        groups = HTuningProblem(tasks, 20).groups()
        phase2 = tuple(group_processing_latency(g) for g in groups)
        unit_costs = tuple(g.unit_cost for g in groups)
        with pytest.raises(ModelError):
            heterogeneous_closeness_sweep(
                groups, [3], unit_costs, group_onhold_latency, phase2, []
            )
        with pytest.raises(ModelError):
            heterogeneous_closeness_sweep(
                groups,
                [-1],
                unit_costs,
                group_onhold_latency,
                phase2,
                [(0.0, 0.0)],
            )
        assert (
            heterogeneous_closeness_sweep(
                groups, [], unit_costs, group_onhold_latency, phase2, []
            )
            == []
        )
