"""Tests for the process-level phase-kernel caches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.perf.cache import (
    cached_hypoexponential_cdf,
    cached_hypoexponential_sf,
    clear_phase_caches,
    configure_phase_cache,
    phase_cache_stats,
    survival_weights,
)
from repro.stats.phase_type import (
    WeightLadder,
    hypoexponential_cdf,
    hypoexponential_sf,
)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_phase_caches()
    yield
    clear_phase_caches()
    configure_phase_cache(max_sf_entries=2048)


class TestWeightLadder:
    def test_matches_one_shot_weights(self):
        rates = [3.0, 1.0, 1.0, 0.5]
        ladder = WeightLadder(rates)
        full = WeightLadder(rates).get(200)
        # Extending in three steps must give the same series bitwise.
        ladder.get(50)
        ladder.get(120)
        np.testing.assert_array_equal(ladder.get(200), full)
        assert ladder.n_computed == 200

    def test_weights_are_decreasing_probabilities(self):
        w = WeightLadder([2.0, 1.0]).get(100)
        assert w[0] == 1.0
        assert np.all(np.diff(w) <= 1e-15)
        assert np.all((w >= 0.0) & (w <= 1.0))

    def test_validation(self):
        with pytest.raises(ModelError):
            WeightLadder([])
        with pytest.raises(ModelError):
            WeightLadder([1.0, -2.0])


class TestCachedKernels:
    def test_sf_matches_uncached(self):
        rates = (2.0, 1.0, 4.0)
        grid = np.linspace(0.0, 12.0, 257)
        np.testing.assert_allclose(
            cached_hypoexponential_sf(rates, grid),
            np.asarray(hypoexponential_sf(rates, grid)),
            atol=1e-13,
        )
        np.testing.assert_allclose(
            cached_hypoexponential_cdf(rates, grid),
            np.asarray(hypoexponential_cdf(rates, grid)),
            atol=1e-13,
        )

    def test_repeat_call_hits_cache(self):
        rates = (2.0, 1.0)
        grid = np.linspace(0.0, 8.0, 65)
        first = cached_hypoexponential_sf(rates, grid)
        stats0 = phase_cache_stats()
        second = cached_hypoexponential_sf(rates, grid)
        stats1 = phase_cache_stats()
        assert second is first  # memoized object, not a recompute
        assert stats1["sf_hits"] == stats0["sf_hits"] + 1

    def test_different_grid_same_rates_reuses_ladder(self):
        rates = (2.0, 1.0)
        cached_hypoexponential_sf(rates, np.linspace(0.0, 5.0, 64))
        stats0 = phase_cache_stats()
        cached_hypoexponential_sf(rates, np.linspace(0.0, 9.0, 128))
        stats1 = phase_cache_stats()
        assert stats1["sf_misses"] == stats0["sf_misses"] + 1
        assert stats1["ladder_hits"] == stats0["ladder_hits"] + 1

    def test_result_is_read_only(self):
        out = cached_hypoexponential_sf((1.0,), np.linspace(0.0, 4.0, 16))
        with pytest.raises(ValueError):
            out[0] = 0.5

    def test_lru_eviction(self):
        configure_phase_cache(max_sf_entries=2)
        grid = np.linspace(0.0, 4.0, 16)
        for r in (1.0, 2.0, 3.0):
            cached_hypoexponential_sf((r,), grid)
        assert phase_cache_stats()["sf_entries"] == 2
        with pytest.raises(ModelError):
            configure_phase_cache(max_sf_entries=0)

    def test_survival_weights_cached(self):
        a = survival_weights([2.0, 1.0], 50)
        b = survival_weights([2.0, 1.0], 120)
        np.testing.assert_array_equal(a, b[:50])
        np.testing.assert_array_equal(
            b, WeightLadder([2.0, 1.0]).get(120)
        )

    def test_clear_resets_everything(self):
        cached_hypoexponential_sf((1.0,), np.linspace(0.0, 4.0, 16))
        clear_phase_caches()
        stats = phase_cache_stats()
        assert stats["sf_entries"] == 0
        assert stats["ladder_entries"] == 0
        assert stats["sf_hits"] == 0
