"""The lock-step agent-market replication engine (`repro.perf.market`).

Certifies the tentpole contract: a batched ``run_replications`` with
seeds ``[s0..sR]`` is trajectory-for-trajectory **bit-identical** to R
sequential seeded runs of the preserved seed event loop
(:func:`repro.perf.reference.reference_agent_run_job`) — across all
three built-in choice models, the custom linear-index fallback, mixed
repetition counts, jittered accuracies, payload answer sampling, and
``max_sim_time`` saturation (the error names the same replication).
"""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.market import (
    NULL_RECORDER,
    AgentSimulator,
    CrowdPlatform,
    NullTraceRecorder,
    PublishRequest,
    TaskType,
    TraceRecorder,
    WorkerPool,
)
from repro.market.dynamics import ConstantRate, NonstationaryWorkerPool
from repro.market.simulator import AtomicTaskOrder, MarketModel
from repro.market.pricing import LinearPricing
from repro.market.worker import (
    ChoiceModel,
    GreedyPriceChoice,
    PriceProportionalChoice,
    SoftmaxChoice,
)
from repro.perf.reference import reference_agent_run_job
from repro.stats.rng import ensure_rng


class CoinPayload:
    """Payload whose answers consume the RNG stream (one draw each)."""

    def sample_answer(self, rng, accuracy):
        return bool(rng.random() < accuracy)


def make_orders(n_tasks=12, with_payload=False):
    task_types = [
        TaskType("easy", processing_rate=2.0, attractiveness=1.0),
        TaskType("hard", processing_rate=1.3, attractiveness=0.6),
    ]
    return [
        AtomicTaskOrder(
            task_type=task_types[i % 2],
            prices=tuple(1 + (i + k) % 4 for k in range(1 + i % 3)),
            atomic_task_id=i,
            payload=CoinPayload() if with_payload else None,
        )
        for i in range(n_tasks)
    ]


def trajectory(result, base_uid=None, base_worker=None):
    """Comparable trajectory tuple; uids/worker ids taken relative."""
    records = result.trace.records
    rel_uid = None
    if records and base_uid is not None:
        rel_uid = [r.uid - base_uid for r in records]
    return (
        result.makespan,
        result.per_atomic_completion,
        result.total_paid,
        result.answers,
        result.trace.worker_arrival_times,
        [
            (
                r.atomic_task_id,
                r.repetition_index,
                r.type_name,
                r.price,
                r.published_at,
                r.accepted_at,
                r.completed_at,
            )
            for r in records
        ],
        rel_uid,
    )


def run_reference(model, seeds, orders, jitter=0.0, keep_events=False):
    pool = WorkerPool(5.0, choice_model=model, accuracy_jitter=jitter)
    sim = AgentSimulator(pool, seed=999)
    results = []
    recorders = []
    for seed in seeds:
        rec = TraceRecorder(keep_events=keep_events)
        recorders.append(rec)
        results.append(
            reference_agent_run_job(
                sim, orders, recorder=rec, rng=ensure_rng(seed)
            )
        )
    return results, recorders


def run_batched(model, seeds, orders, jitter=0.0, keep_events=False):
    pool = WorkerPool(5.0, choice_model=model, accuracy_jitter=jitter)
    sim = AgentSimulator(pool, seed=999)
    recorders = [TraceRecorder(keep_events=keep_events) for _ in seeds]
    results = sim.run_replications(
        orders, seeds=seeds, recorders=recorders, engine="agent-batch"
    )
    return results, recorders


MODELS = [
    lambda: PriceProportionalChoice(),
    lambda: PriceProportionalChoice(leave_weight=3.0),
    lambda: SoftmaxChoice(beta=1.5, leave_utility=0.3),
    lambda: SoftmaxChoice(beta=0.7, leave_utility=-1.0),
    lambda: GreedyPriceChoice(),
]


class TestLockstepBitIdentity:
    @pytest.mark.parametrize("make_model", MODELS)
    @pytest.mark.parametrize("seed_base", [0, 101])
    def test_matches_sequential_reference(self, make_model, seed_base):
        """Batched seeds [s0..sR] == R sequential seeded seed-loop runs,
        trajectory for trajectory (mixed repetition counts included)."""
        seeds = [seed_base + i for i in range(5)]
        orders = make_orders()
        ref, _ = run_reference(make_model(), seeds, orders)
        fast, _ = run_batched(make_model(), seeds, orders)
        for a, b in zip(ref, fast):
            ua = a.trace.records[0].uid
            ub = b.trace.records[0].uid
            assert trajectory(a, ua) == trajectory(b, ub)

    @pytest.mark.parametrize("make_model", MODELS[:3])
    def test_accuracy_jitter_stream(self, make_model):
        """Per-completion jitter normals are drawn in the same order."""
        seeds = [7, 8, 9]
        orders = make_orders()
        ref, _ = run_reference(make_model(), seeds, orders, jitter=0.07)
        fast, _ = run_batched(make_model(), seeds, orders, jitter=0.07)
        for a, b in zip(ref, fast):
            assert trajectory(a) == trajectory(b)

    def test_payload_answer_sampling(self):
        """Payload draws interleave identically with the event stream."""
        seeds = [3, 4, 5]
        orders = make_orders(with_payload=True)
        ref, _ = run_reference(PriceProportionalChoice(), seeds, orders)
        fast, _ = run_batched(PriceProportionalChoice(), seeds, orders)
        for a, b in zip(ref, fast):
            assert a.answers == b.answers
            assert trajectory(a) == trajectory(b)

    def test_keep_events_trace_replay(self):
        """Full event traces (kinds, times, payload timestamps) match."""
        seeds = [0, 1]
        orders = make_orders(n_tasks=8)
        ref, ref_recs = run_reference(
            SoftmaxChoice(beta=2.0), seeds, orders, keep_events=True
        )
        fast, fast_recs = run_batched(
            SoftmaxChoice(beta=2.0), seeds, orders, keep_events=True
        )
        for ra, rb in zip(ref_recs, fast_recs):
            assert [(e.kind, e.time) for e in ra.events] == [
                (e.kind, e.time) for e in rb.events
            ]

    def test_worker_ids_continue_across_replications(self):
        """One shared pool numbers workers sequentially in both modes."""
        seeds = [0, 1, 2]
        orders = make_orders(n_tasks=6)
        _, ref_recs = run_reference(
            GreedyPriceChoice(), seeds, orders, keep_events=True
        )
        _, fast_recs = run_batched(
            GreedyPriceChoice(), seeds, orders, keep_events=True
        )

        def worker_ids(recorders):
            out = []
            for rec in recorders:
                ids = [
                    e.payload.worker_id
                    for e in rec.events
                    if e.payload is not None
                    and e.payload.worker_id is not None
                    and e.kind.name == "TASK_COMPLETED"
                ]
                out.append(ids)
            base = out[0][0]
            return [[i - base for i in ids] for ids in out]

        assert worker_ids(ref_recs) == worker_ids(fast_recs)

    def test_spawned_seed_protocol_is_engine_independent(self):
        orders = make_orders(n_tasks=6)

        def run(engine):
            sim = AgentSimulator(WorkerPool(5.0), seed=42)
            return sim.run_replications(orders, 6, engine=engine)

        ra = run("scalar")
        rb = run("agent-batch")
        assert [x.makespan for x in ra] == [x.makespan for x in rb]

    def test_philox_generator_seeds(self):
        """Counter-based Philox streams work as explicit seeds."""
        orders = make_orders(n_tasks=6)

        def run(engine):
            sim = AgentSimulator(WorkerPool(5.0), seed=0)
            gens = [
                np.random.Generator(np.random.Philox(key=100 + i))
                for i in range(4)
            ]
            return sim.run_replications(orders, seeds=gens, engine=engine)

        ra = run("scalar")
        rb = run("agent-batch")
        assert [x.makespan for x in ra] == [x.makespan for x in rb]

    def test_generators_end_at_identical_stream_positions(self):
        """The lock-step engine consumes each stream draw-for-draw."""
        orders = make_orders(n_tasks=6)
        gens_a = [np.random.default_rng(s) for s in (1, 2, 3)]
        gens_b = [np.random.default_rng(s) for s in (1, 2, 3)]
        sim = AgentSimulator(WorkerPool(5.0), seed=0)
        sim.run_replications(orders, seeds=gens_a, engine="scalar")
        sim.run_replications(orders, seeds=gens_b, engine="agent-batch")
        for a, b in zip(gens_a, gens_b):
            assert a.bit_generator.state == b.bit_generator.state


class TestFallbacks:
    def test_custom_choice_model_linear_fallback(self):
        """Custom models route through the sequential reference path
        and still match it exactly."""

        class TakeCheapest(ChoiceModel):
            def choose(self, open_tasks, rng):
                if not open_tasks:
                    return None
                return min(open_tasks, key=lambda t: (t.price, t.uid))

        seeds = [0, 1, 2]
        orders = make_orders(n_tasks=8)
        ref, _ = run_reference(TakeCheapest(), seeds, orders)
        fast, _ = run_batched(TakeCheapest(), seeds, orders)
        for a, b in zip(ref, fast):
            assert trajectory(a) == trajectory(b)

    def test_nonstationary_pool_falls_back(self):
        """Overridden pools (thinning arrivals) bypass the lock-step
        kernel but keep identical results."""
        orders = make_orders(n_tasks=5)

        def run(engine):
            pool = NonstationaryWorkerPool(ConstantRate(5.0))
            sim = AgentSimulator(pool, seed=3)
            return sim.run_replications(
                orders, seeds=[0, 1, 2], engine=engine
            )

        ra = run("scalar")
        rb = run("agent-batch")
        assert [x.makespan for x in ra] == [x.makespan for x in rb]

    def test_duplicate_atomic_ids_fall_back(self):
        """Duplicate ids are degenerate in the seed loop (its id-keyed
        bookkeeping collides); the lock-step engine must not silently
        diverge — it routes to the sequential path and fails exactly
        the same way."""
        tt = TaskType("t", processing_rate=2.0)
        orders = [
            AtomicTaskOrder(task_type=tt, prices=(2,), atomic_task_id=0),
            AtomicTaskOrder(task_type=tt, prices=(3,), atomic_task_id=0),
        ]

        def run(engine):
            sim = AgentSimulator(WorkerPool(5.0), seed=3)
            return sim.run_replications(orders, seeds=[0, 1], engine=engine)

        with pytest.raises(IndexError):
            run("scalar")
        with pytest.raises(IndexError):
            run("agent-batch")


class TestMaxSimTimeSaturation:
    # Thresholds picked so the first failing replication is the first,
    # a middle, and a late index of the ensemble respectively.
    @pytest.mark.parametrize("max_sim_time", [40.0, 200.0, 260.0])
    def test_error_in_same_replication(self, max_sim_time):
        """A saturating job raises SimulationError naming the same
        replication index in both engines."""
        tt = TaskType("slow", processing_rate=2.0)
        orders = [
            AtomicTaskOrder(task_type=tt, prices=(2, 3), atomic_task_id=i)
            for i in range(6)
        ]
        seeds = list(range(12))

        def first_failure(engine):
            pool = WorkerPool(0.08, choice_model=PriceProportionalChoice())
            sim = AgentSimulator(pool, seed=1, max_sim_time=max_sim_time)
            with pytest.raises(SimulationError) as excinfo:
                sim.run_replications(orders, seeds=seeds, engine=engine)
            message = str(excinfo.value)
            assert "max_sim_time" in message
            return int(re.match(r"replication (\d+):", message).group(1))

        assert first_failure("scalar") == first_failure("agent-batch")


class TestNullRecorder:
    def test_scalar_null_recorder_trajectory_unchanged(self):
        orders = make_orders(n_tasks=8)
        sim_a = AgentSimulator(WorkerPool(5.0), seed=5)
        sim_b = AgentSimulator(WorkerPool(5.0), seed=5)
        full = sim_a.run_job(orders)
        null = sim_b.run_job(orders, recorder=NULL_RECORDER)
        assert null.makespan == full.makespan
        assert null.per_atomic_completion == full.per_atomic_completion
        assert null.answers == full.answers
        assert null.total_paid == full.total_paid
        assert null.trace is NULL_RECORDER
        assert null.trace.records == []
        assert null.trace.worker_arrival_times == []

    def test_batched_null_recorder_trajectory_unchanged(self):
        seeds = [0, 1, 2]
        orders = make_orders(n_tasks=8, with_payload=True)
        full, _ = run_batched(PriceProportionalChoice(), seeds, orders)
        pool = WorkerPool(5.0, choice_model=PriceProportionalChoice())
        sim = AgentSimulator(pool, seed=999)
        null = sim.run_replications(
            orders, seeds=seeds, recorders=NULL_RECORDER, engine="agent-batch"
        )
        for a, b in zip(full, null):
            assert a.makespan == b.makespan
            assert a.per_atomic_completion == b.per_atomic_completion
            assert a.answers == b.answers
            assert a.total_paid == b.total_paid
            assert b.trace is NULL_RECORDER

    def test_aggregate_null_recorder_trajectory_unchanged(self):
        from repro.market.simulator import AggregateSimulator

        market = MarketModel(LinearPricing(1.0, 1.0))
        orders = make_orders(n_tasks=6, with_payload=True)
        full = AggregateSimulator(market, seed=4).run_job(orders)
        null = AggregateSimulator(market, seed=4).run_job(
            orders, recorder=NullTraceRecorder()
        )
        assert null.makespan == full.makespan
        assert null.answers == full.answers
        assert null.trace.records == []


class TestReplicationApi:
    def test_needs_count_or_seeds(self):
        sim = AgentSimulator(WorkerPool(5.0), seed=0)
        with pytest.raises(SimulationError):
            sim.run_replications(make_orders(n_tasks=2))

    def test_count_seed_mismatch(self):
        sim = AgentSimulator(WorkerPool(5.0), seed=0)
        with pytest.raises(SimulationError):
            sim.run_replications(
                make_orders(n_tasks=2), 3, seeds=[0, 1]
            )

    def test_recorder_count_mismatch(self):
        sim = AgentSimulator(WorkerPool(5.0), seed=0)
        with pytest.raises(SimulationError):
            sim.run_replications(
                make_orders(n_tasks=2),
                seeds=[0, 1],
                recorders=[TraceRecorder()],
            )

    def test_bare_stateful_recorder_rejected(self):
        """A single TraceRecorder is ambiguous (only the null sentinel
        may be shared) and must fail with a clear error, not a
        TypeError from iteration."""
        sim = AgentSimulator(WorkerPool(5.0), seed=0)
        with pytest.raises(SimulationError, match="stateful"):
            sim.run_replications(
                make_orders(n_tasks=2),
                seeds=[0, 1],
                recorders=TraceRecorder(),
            )

    def test_shared_stateful_recorder_rejected(self):
        """One recorder object for several replications would interleave
        traces in engine-execution order — rejected up front."""
        sim = AgentSimulator(WorkerPool(5.0), seed=0)
        shared = TraceRecorder()
        with pytest.raises(SimulationError, match="share"):
            sim.run_replications(
                make_orders(n_tasks=2),
                seeds=[0, 1],
                recorders=[shared, shared],
            )

    def test_null_replications_burn_uids_like_sequential(self):
        """Mixed null/plain recorder fan-outs must consume the global
        task-uid counter identically in both engines (the sequential
        engine constructs PublishedTasks even for null replications),
        so uids line up engine-for-engine and run-for-run."""
        from repro.market.task import _task_uid

        orders = make_orders(n_tasks=4)
        total_publishes = sum(o.repetitions for o in orders)

        def consumed(engine):
            sim = AgentSimulator(WorkerPool(5.0), seed=0)
            recorders = [NullTraceRecorder(), TraceRecorder()]
            before = next(_task_uid)
            results = sim.run_replications(
                orders, seeds=[0, 1], recorders=recorders, engine=engine
            )
            after = next(_task_uid)
            rel = [
                r.uid - results[1].trace.records[0].uid
                for r in results[1].trace.records
            ]
            return after - before - 1, rel

        count_a, rel_a = consumed("scalar")
        count_b, rel_b = consumed("agent-batch")
        assert count_a == count_b == 2 * total_publishes
        assert rel_a == rel_b

    def test_aggregate_simulator_engines_agree(self):
        from repro.market.simulator import AggregateSimulator

        market = MarketModel(LinearPricing(1.0, 1.0))
        orders = make_orders(n_tasks=5)

        def run(engine):
            sim = AggregateSimulator(market, seed=11)
            return sim.run_replications(
                orders, seeds=[0, 1, 2], engine=engine
            )

        ra = run("scalar")
        rb = run("agent-batch")  # falls back to the sequential path
        assert [x.makespan for x in ra] == [x.makespan for x in rb]

    def test_platform_run_replications_charges_once(self):
        platform = CrowdPlatform.with_linear_market(
            1.0, 1.0, engine="agent", arrival_rate=5.0, budget=100, seed=0
        )
        tt = TaskType("t", processing_rate=2.0)
        requests = [
            PublishRequest(task_type=tt, prices=(2, 3)) for _ in range(4)
        ]
        results = platform.run_replications(
            requests, seeds=[0, 1, 2], engine="agent-batch"
        )
        assert len(results) == 3
        assert platform.spent == 20  # one batch charge, not 3x
        assert all(r.total_paid == 20 for r in results)

    def test_platform_replications_engines_agree(self):
        def run(engine):
            platform = CrowdPlatform.with_linear_market(
                1.0, 1.0, engine="agent", arrival_rate=5.0, seed=0
            )
            tt = TaskType("t", processing_rate=2.0)
            requests = [
                PublishRequest(task_type=tt, prices=(2,)) for _ in range(5)
            ]
            return platform.run_replications(
                requests, seeds=[0, 1], engine=engine
            )

        ra = run(None)
        rb = run("agent-batch")
        assert [x.makespan for x in ra] == [x.makespan for x in rb]
