"""Unit tests for repro.perf.engine (registry) + chunked sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Allocation
from repro.core.latency import sample_job_latencies
from repro.errors import ModelError
from repro.perf import (
    BatchEngine,
    ChunkedBatchEngine,
    EvaluationEngine,
    ScalarEngine,
    available_engines,
    get_engine,
    register_engine,
    sample_job_latencies_batch,
)
from repro.perf.engine import _REGISTRY
from repro.workloads import repetition_workload


@pytest.fixture
def problem():
    return repetition_workload(budget=300, n_tasks=12)


@pytest.fixture
def allocation(problem):
    return Allocation.uniform(problem, 2)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_engines()
        assert {"scalar", "batch", "chunked-batch"} <= set(names)

    def test_get_engine_by_name(self):
        assert isinstance(get_engine("scalar"), ScalarEngine)
        assert isinstance(get_engine("batch"), BatchEngine)
        assert isinstance(get_engine("chunked-batch"), ChunkedBatchEngine)

    def test_get_engine_passthrough(self):
        engine = BatchEngine(chunk_rows=8)
        assert get_engine(engine) is engine

    def test_none_resolves_to_default(self):
        assert get_engine(None).name == "scalar"

    def test_unknown_name_raises(self):
        with pytest.raises(ModelError):
            get_engine("vibes")

    def test_register_requires_name_and_rejects_duplicates(self):
        class Nameless(EvaluationEngine):
            name = ""

        with pytest.raises(ModelError):
            register_engine(Nameless())
        with pytest.raises(ModelError):
            register_engine(ScalarEngine())  # "scalar" already bound

    def test_register_replace(self):
        custom = ChunkedBatchEngine(chunk_rows=4)
        original = _REGISTRY["chunked-batch"]
        try:
            register_engine(custom, replace=True)
            assert get_engine("chunked-batch") is custom
        finally:
            register_engine(original, replace=True)


class TestEngineEquivalence:
    @pytest.mark.parametrize("name", ["scalar", "batch", "chunked-batch"])
    def test_bit_identical_across_engines(self, problem, allocation, name):
        ref = sample_job_latencies(
            problem, allocation, 400, rng=np.random.default_rng(11)
        )
        out = get_engine(name).sample(
            problem, allocation, 400, rng=np.random.default_rng(11)
        )
        assert np.array_equal(ref, out)

    def test_engine_object_accepted_by_sample_job_latencies(
        self, problem, allocation
    ):
        ref = sample_job_latencies(
            problem, allocation, 100, rng=np.random.default_rng(2)
        )
        out = sample_job_latencies(
            problem,
            allocation,
            100,
            rng=np.random.default_rng(2),
            engine=BatchEngine(chunk_rows=3),
        )
        assert np.array_equal(ref, out)

    def test_invalid_chunk_rows(self):
        with pytest.raises(ModelError):
            BatchEngine(chunk_rows=0)


class TestChunkedSamplingProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        chunk_rows=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_samples=st.integers(min_value=1, max_value=64),
    )
    def test_chunked_bit_identical_to_unchunked(
        self, chunk_rows, seed, n_samples
    ):
        problem = repetition_workload(budget=200, n_tasks=8)
        allocation = Allocation.uniform(problem, 2)
        ref = sample_job_latencies_batch(
            problem, allocation, n_samples, rng=np.random.default_rng(seed)
        )
        out = sample_job_latencies_batch(
            problem,
            allocation,
            n_samples,
            rng=np.random.default_rng(seed),
            chunk_rows=chunk_rows,
        )
        assert np.array_equal(ref, out)

    def test_chunk_rows_one_still_identical(self, problem, allocation):
        ref = sample_job_latencies_batch(
            problem, allocation, 50, rng=np.random.default_rng(0)
        )
        out = sample_job_latencies_batch(
            problem, allocation, 50, rng=np.random.default_rng(0), chunk_rows=1
        )
        assert np.array_equal(ref, out)

    def test_invalid_chunk_rows(self, problem, allocation):
        with pytest.raises(ModelError):
            sample_job_latencies_batch(
                problem, allocation, 10, chunk_rows=0
            )


class TestChunkedMakespans:
    def test_chunk_samples_bit_identical(self):
        from repro.market import LinearPricing, MarketModel, TaskType
        from repro.market.simulator import AtomicTaskOrder
        from repro.perf import BatchAggregateSimulator

        market = MarketModel(LinearPricing(slope=1.0, intercept=1.0))
        task_type = TaskType("t", processing_rate=2.0)
        orders = [
            AtomicTaskOrder(task_type, (2,) * (1 + i % 3), i) for i in range(6)
        ]
        ref = BatchAggregateSimulator(market, seed=3).sample_makespans(
            orders, 200
        )
        for chunk in (1, 7, 50, 199, 200, 500):
            out = BatchAggregateSimulator(market, seed=3).sample_makespans(
                orders, 200, chunk_samples=chunk
            )
            assert np.array_equal(ref, out), chunk
