"""Tier-1 smoke variant of ``benchmarks/bench_perf_engine.py``.

Runs the real benchmark functions at reduced size so every tier-1 run
re-certifies (a) the scalar/batch equivalences the bench asserts and
(b) that the batch engines actually are faster, keeping the perf
trajectory honest without benchmark-scale runtimes.
"""

from __future__ import annotations

import importlib.util
import json
import os
import pathlib
import sys

import pytest

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
_BENCH_PATH = _REPO_ROOT / "benchmarks" / "bench_perf_engine.py"

#: Sections safe for tier-1: everything that stays in-process.  The
#: ``executor_scaling`` section spawns a real worker pool and
#: ``service_latency`` binds real sockets, so tier-1 only asserts on
#: their committed numbers; the live smoke runs are gated behind
#: ``REPRO_EXEC_TESTS=1`` (the parallel-executor / service-layer CI
#: jobs).
_NON_TIER1 = ("executor_scaling", "service_latency")


def _tier1_sections(bench):
    return [name for name in bench._SECTIONS if name not in _NON_TIER1]


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location(
        "bench_perf_engine", _BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_perf_engine", module)
    spec.loader.exec_module(module)
    return module


def test_smoke_run_asserts_equivalence_and_speedup(bench, tmp_path):
    # The bench functions raise if batch output ever diverges from the
    # scalar engines, so a successful run is itself an equivalence check.
    results = bench.run(
        n_samples=200,
        n_tasks=30,
        n_budgets=5,
        n_deadlines=6,
        n_replications=8,
        write=False,
        sections=_tier1_sections(bench),
    )
    mc = results["mc_job_sampling"]
    dp = results["budget_indexed_dp_sweep"]
    one_pass = results["one_pass_strategy_sweep"]
    chunked = results["chunked_batch_sampling"]
    deadline = results["deadline_frontier"]
    market = results["agent_market_replications"]
    session = results["session_run_many"]
    resilience = results["session_resilience"]
    assert mc["bit_identical"]
    assert dp["outputs_identical"]
    # The sweep bench raises internally if any one-pass allocation or
    # chunked sample diverges from the per-budget/scalar reference.
    assert one_pass["outputs_identical"]
    assert chunked["bit_identical"]
    # The deadline bench raises internally if any sweep point diverges
    # from the seed comparator.
    assert deadline["outputs_identical"]
    # The agent-market bench raises internally if any replication's
    # trace diverges from the seed event loop.
    assert market["bit_identical"]
    # Event-level scalar simulation vs one matrix draw: even at smoke
    # size the batch engine must win clearly.
    assert mc["speedup"] > 3.0
    # One DP pass vs 5 seed runs.
    assert dp["speedup"] > 1.5
    # One strategy-level DP pass vs 5 factory+tune runs.
    assert one_pass["speedup"] > 1.0
    # Shared deadline kernels vs per-deadline fresh scalar kernels.
    assert deadline["speedup"] > 1.5
    # Lock-step replications vs per-replication event loops: the full
    # 64-replication target is >= 5x; at smoke size just require a
    # clear win.
    assert market["speedup"] > 1.5
    # The session bench raises internally if a shared-cache batch's
    # payloads diverge from cold per-run sessions; sharing the kernel
    # tables strictly removes work, so batched must not lose.
    assert session["outputs_identical"]
    assert session["speedup"] > 1.0
    # The resilience bench raises internally if the armed executor's
    # payloads diverge from the default fast path; arming the fault
    # machinery (empty plan, live site checks) must stay cheap.
    assert resilience["outputs_identical"]
    assert resilience["overhead_pct"] < 5.0
    # The store bench raises internally if a served document ever
    # diverges from the computed one or a warm re-submission misses;
    # serving a verified disk read must beat recomputing the sweep.
    serving = results["store_serving"]
    assert serving["outputs_identical"]
    assert serving["warm_hit_rate"] == 1.0
    assert serving["speedup"] > 1.0


def test_sections_filter_runs_subset(bench):
    results = bench.run(
        n_replications=8,
        write=False,
        sections=["agent_market_replications"],
    )
    assert list(results) == ["agent_market_replications"]


def test_sections_filter_merges_into_committed_json(
    bench, tmp_path, monkeypatch
):
    import json

    committed = {"other_section": {"speedup": 2.0}}
    path = tmp_path / "BENCH.json"
    path.write_text(json.dumps(committed))
    monkeypatch.setattr(bench, "RESULT_PATH", path)
    bench.run(
        n_replications=8,
        write=True,
        sections=["agent_market_replications"],
    )
    on_disk = json.loads(path.read_text())
    assert set(on_disk) == {"other_section", "agent_market_replications"}
    assert on_disk["other_section"] == {"speedup": 2.0}


def test_bench_writes_json(bench, tmp_path, monkeypatch):
    monkeypatch.setattr(bench, "RESULT_PATH", tmp_path / "BENCH.json")
    results = bench.run(
        n_samples=50, n_tasks=10, n_budgets=3, write=True,
        sections=_tier1_sections(bench),
    )
    on_disk = json.loads((tmp_path / "BENCH.json").read_text())
    assert set(on_disk) == set(results)
    for section in on_disk.values():
        assert section["speedup"] > 0


def test_executor_scaling_section_is_committed():
    # Tier-1 stays serial-only, so it certifies the *committed* numbers
    # instead of re-spawning a pool: the section must exist, keep its
    # identity flag, and report every promised metric.
    committed = json.loads(
        (_REPO_ROOT / "BENCH_perf_engine.json").read_text()
    )
    section = committed["executor_scaling"]
    assert section["outputs_identical"] is True
    assert section["serial_specs_per_sec"] > 0
    assert section["sequential_replications_per_sec"] > 0
    for workers in ("1", "2", "4"):
        assert section["pool_specs_per_sec"][workers] > 0
        assert section["sharded_replications_per_sec"][workers] > 0
    assert "recovery_overhead_pct" in section
    assert section["speedup"] > 0


def test_service_latency_section_is_committed():
    # Same treatment as executor_scaling: tier-1 certifies the
    # committed numbers (shape + identity + the warm-store win) rather
    # than binding sockets; the service-layer CI job re-runs it live.
    committed = json.loads(
        (_REPO_ROOT / "BENCH_perf_engine.json").read_text()
    )
    section = committed["service_latency"]
    assert section["outputs_identical"] is True
    for shape in ("cold", "warm_store", "online"):
        stats = section[shape]
        assert 0 < stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]
        assert stats["requests_per_sec"] > 0
    # The acceptance bar: warm-store serving measurably faster than
    # cold compute, through the real socket path.
    assert section["speedup"] > 1.0
    assert section["warm_store"]["p50_ms"] < section["cold"]["p50_ms"]


@pytest.mark.skipif(
    os.environ.get("REPRO_EXEC_TESTS") != "1",
    reason="binds real sockets; runs in the service-layer CI job",
)
def test_service_latency_smoke(bench):
    results = bench.run(
        n_samples=50,
        n_tasks=10,
        n_budgets=3,
        write=False,
        sections=["service_latency"],
    )
    section = results["service_latency"]
    # The bench itself asserts byte-identity against direct Session.run
    # and that every warm submission was a store hit.
    assert section["outputs_identical"]
    assert section["speedup"] > 0


@pytest.mark.skipif(
    os.environ.get("REPRO_EXEC_TESTS") != "1",
    reason="spawns a worker pool; runs in the parallel-executor CI job",
)
def test_executor_scaling_smoke(bench):
    results = bench.run(
        n_samples=50,
        n_tasks=10,
        n_replications=8,
        write=False,
        sections=["executor_scaling"],
    )
    section = results["executor_scaling"]
    # The bench itself asserts byte-identity between serial and pooled
    # reports and the clean recovery merge; reaching here means those
    # contracts held at smoke size too.
    assert section["outputs_identical"]
    assert section["speedup"] > 0
