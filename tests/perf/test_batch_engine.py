"""Engine-equivalence tests: batch vs scalar Monte-Carlo samplers.

The batch engines are designed to consume the RNG stream in exactly
the order their scalar counterparts do, so agreement is checked
seed-for-seed (bitwise) where that contract holds, and
distributionally (KS) across engines that cannot share a stream.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as sps

from repro import HTuningProblem, TaskSpec
from repro.core.latency import sample_job_latencies, simulate_job_latency
from repro.core.problem import Allocation
from repro.errors import ModelError, SimulationError
from repro.market import LinearPricing, MarketModel, TaskType
from repro.market.simulator import AggregateSimulator, AtomicTaskOrder
from repro.perf import BatchAggregateSimulator, sample_job_latencies_batch
from repro.perf.batch import evaluate_allocations


@pytest.fixture
def mixed_problem(linear_pricing):
    tasks = [
        TaskSpec(i, 1 + i % 3, linear_pricing, 1.5 + (i % 2), type_name=f"t{i % 2}")
        for i in range(8)
    ]
    return HTuningProblem(tasks, budget=200)


class TestBatchSampler:
    def test_bitwise_equal_to_scalar(self, mixed_problem):
        alloc = Allocation.uniform(mixed_problem, 2)
        scalar = sample_job_latencies(
            mixed_problem, alloc, 400, rng=np.random.default_rng(7)
        )
        batch = sample_job_latencies_batch(
            mixed_problem, alloc, 400, rng=np.random.default_rng(7)
        )
        assert np.array_equal(scalar, batch)

    def test_bitwise_equal_without_processing(self, mixed_problem):
        alloc = Allocation.uniform(mixed_problem, 3)
        scalar = sample_job_latencies(
            mixed_problem, alloc, 200,
            rng=np.random.default_rng(1), include_processing=False,
        )
        batch = sample_job_latencies_batch(
            mixed_problem, alloc, 200,
            rng=np.random.default_rng(1), include_processing=False,
        )
        assert np.array_equal(scalar, batch)

    def test_engine_kwarg_routes_to_batch(self, mixed_problem):
        alloc = Allocation.uniform(mixed_problem, 2)
        via_kwarg = sample_job_latencies(
            mixed_problem, alloc, 100, rng=np.random.default_rng(3),
            engine="batch",
        )
        direct = sample_job_latencies_batch(
            mixed_problem, alloc, 100, rng=np.random.default_rng(3)
        )
        assert np.array_equal(via_kwarg, direct)
        assert simulate_job_latency(
            mixed_problem, alloc, 100, rng=np.random.default_rng(3),
            engine="batch",
        ) == pytest.approx(float(direct.mean()))

    def test_unknown_engine_rejected(self, mixed_problem):
        alloc = Allocation.uniform(mixed_problem, 2)
        with pytest.raises(ModelError):
            sample_job_latencies(mixed_problem, alloc, 10, engine="gpu")

    def test_rejects_bad_sample_count(self, mixed_problem):
        alloc = Allocation.uniform(mixed_problem, 2)
        with pytest.raises(ModelError):
            sample_job_latencies_batch(mixed_problem, alloc, 0)


class TestBatchAggregateSimulator:
    @pytest.fixture
    def orders(self):
        tt = TaskType("vote", processing_rate=2.0)
        return [AtomicTaskOrder(tt, (2, 3, 1), i) for i in range(5)]

    @pytest.fixture
    def market(self, linear_pricing):
        return MarketModel(linear_pricing)

    @pytest.mark.parametrize("mode", ["sequential", "parallel"])
    def test_bitwise_equal_to_scalar_run_jobs(self, market, orders, mode):
        scalar = AggregateSimulator(market, seed=11)
        ms_scalar = np.array(
            [
                scalar.run_job(orders, repetition_mode=mode).makespan
                for _ in range(60)
            ]
        )
        ms_batch = BatchAggregateSimulator(market, seed=11).sample_makespans(
            orders, 60, repetition_mode=mode
        )
        assert np.array_equal(ms_scalar, ms_batch)

    def test_distributional_agreement_ks(self, market, orders):
        # Independent seeds: the engines must agree in distribution.
        a = BatchAggregateSimulator(market, seed=1).sample_makespans(orders, 4000)
        scalar = AggregateSimulator(market, seed=2)
        b = np.array([scalar.run_job(orders).makespan for _ in range(800)])
        assert sps.ks_2samp(a, b).pvalue > 0.01

    def test_mean_latency(self, market, orders):
        sim = BatchAggregateSimulator(market, seed=0)
        mean = sim.mean_latency(orders, 500)
        assert mean > 0

    def test_rejects_answer_payloads(self, market):
        class Payload:
            def sample_answer(self, rng, accuracy):  # pragma: no cover
                return 1

        tt = TaskType("vote", processing_rate=2.0)
        orders = [AtomicTaskOrder(tt, (1,), 0, payload=Payload())]
        with pytest.raises(SimulationError):
            BatchAggregateSimulator(market, seed=0).sample_makespans(orders, 10)

    def test_rejects_empty_job_and_bad_mode(self, market, orders):
        sim = BatchAggregateSimulator(market, seed=0)
        with pytest.raises(SimulationError):
            sim.sample_makespans([], 10)
        with pytest.raises(SimulationError):
            sim.sample_makespans(orders, 10, repetition_mode="warp")


class TestEvaluateAllocations:
    def test_mc_scoring_deterministic(self, mixed_problem):
        allocs = [Allocation.uniform(mixed_problem, p) for p in (1, 2, 3)]
        a = evaluate_allocations(
            mixed_problem, allocs, scoring="mc", n_samples=500, rng=5
        )
        b = evaluate_allocations(
            mixed_problem, allocs, scoring="mc", n_samples=500, rng=5
        )
        np.testing.assert_array_equal(a, b)
        # higher price -> faster acceptance -> lower latency
        assert a[0] > a[-1]

    def test_numeric_matches_expected_job_latency(self, mixed_problem):
        from repro.core.latency import expected_job_latency

        allocs = [Allocation.uniform(mixed_problem, p) for p in (1, 2, 4)]
        batch = evaluate_allocations(mixed_problem, allocs, scoring="numeric")
        ref = [expected_job_latency(mixed_problem, a) for a in allocs]
        # Shared grid vs per-allocation grid: equal up to integration
        # error, far below the ordering margins the sweeps rely on.
        np.testing.assert_allclose(batch, ref, rtol=5e-3)

    def test_numeric_parallel_mode_matches_reference(self, mixed_problem):
        from repro.core.latency import expected_job_latency

        allocs = [Allocation.uniform(mixed_problem, p) for p in (1, 3)]
        batch = evaluate_allocations(
            mixed_problem, allocs, scoring="numeric",
            repetition_mode="parallel",
        )
        ref = [
            expected_job_latency(mixed_problem, a, repetition_mode="parallel")
            for a in allocs
        ]
        np.testing.assert_allclose(batch, ref, rtol=5e-3)

    def test_mc_rejects_parallel_mode(self, mixed_problem):
        # The MC samplers model sequential repetitions only; asking for
        # parallel must fail loudly instead of silently scoring the
        # sequential model.
        with pytest.raises(ModelError):
            evaluate_allocations(
                mixed_problem,
                [Allocation.uniform(mixed_problem, 1)],
                scoring="mc",
                repetition_mode="parallel",
            )

    def test_rejects_empty_and_unknown_scoring(self, mixed_problem):
        with pytest.raises(ModelError):
            evaluate_allocations(mixed_problem, [], scoring="mc")
        with pytest.raises(ModelError):
            evaluate_allocations(
                mixed_problem,
                [Allocation.uniform(mixed_problem, 1)],
                scoring="exact",
            )
