"""Unit tests for repro.api.config — RunConfig resolution + serialization."""

from __future__ import annotations

import json

import pytest

from repro.api import RECORDER_POLICIES, RunConfig
from repro.errors import ModelError
from repro.perf.deadline import get_deadline_comparator
from repro.perf.engine import get_engine, resolve_engine
from repro.stats import ensure_rng


class TestValidation:
    def test_defaults(self):
        config = RunConfig()
        assert config.engine is None
        assert config.comparator is None
        assert config.recorder is None
        assert config.seed == 0
        assert config.replications == 1

    def test_rejects_nonpositive_replications(self):
        with pytest.raises(ModelError):
            RunConfig(replications=0)
        with pytest.raises(ModelError):
            RunConfig(replications=-1)

    def test_rejects_unknown_recorder_policy(self):
        with pytest.raises(ModelError):
            RunConfig(recorder="tape")
        for policy in RECORDER_POLICIES:
            RunConfig(recorder=policy)

    def test_frozen(self):
        with pytest.raises(Exception):
            RunConfig().engine = "batch"

    def test_replace_returns_new_config(self):
        base = RunConfig(seed=3)
        other = base.replace(engine="batch")
        assert base.engine is None
        assert other.engine == "batch"
        assert other.seed == 3


class TestResolve:
    """RunConfig.resolve() is the single place defaulting happens."""

    def test_none_resolves_to_defaults(self):
        resolved = RunConfig().resolve()
        assert resolved.engine is get_engine(None)
        assert resolved.engine_name == "scalar"
        assert resolved.comparator is get_deadline_comparator(None)
        assert resolved.comparator_name == "batched"

    def test_named_engine_and_comparator(self):
        resolved = RunConfig(engine="batch", comparator="reference").resolve()
        assert resolved.engine is get_engine("batch")
        assert resolved.comparator is get_deadline_comparator("reference")
        assert resolved.comparator_name == "reference"

    def test_unknown_names_fail_at_resolve(self):
        with pytest.raises(ModelError):
            RunConfig(engine="warp").resolve()
        with pytest.raises(ModelError):
            RunConfig(comparator="warp").resolve()

    def test_replication_seeds_protocol(self):
        resolved = RunConfig(seed=5, replications=1).resolve()
        assert resolved.replication_seeds() == [5]
        many = RunConfig(seed=5, replications=3).resolve()
        assert len(many.replication_seeds()) == 3

    def test_recorder_policies(self):
        from repro.market.trace import NULL_RECORDER, TraceRecorder

        assert RunConfig().resolve().make_recorders(2) is None
        null = RunConfig(recorder="null").resolve().make_recorders(2)
        assert null is NULL_RECORDER
        traces = RunConfig(recorder="trace").resolve().make_recorders(3)
        assert len(traces) == 3
        assert all(isinstance(t, TraceRecorder) for t in traces)


class TestRegistryAcceptsConfigObjects:
    """Every engine=/comparator= parameter accepts the config itself."""

    def test_resolve_engine_unwraps_config(self):
        assert resolve_engine(RunConfig()) is get_engine(None)
        assert resolve_engine(RunConfig(engine="batch")) is get_engine("batch")

    def test_comparator_registry_unwraps_config(self):
        assert get_deadline_comparator(
            RunConfig(comparator="reference")
        ) is get_deadline_comparator("reference")
        assert get_deadline_comparator(RunConfig()) is get_deadline_comparator(
            None
        )

    def test_sampling_call_site_accepts_config(self):
        import numpy as np

        from repro.core.latency import sample_job_latencies
        from repro.workloads import homogeneity_workload

        problem = homogeneity_workload(budget=200, n_tasks=8)
        from repro.core import even_allocation

        allocation = even_allocation(problem)
        a = sample_job_latencies(problem, allocation, 50, rng=0)
        b = sample_job_latencies(
            problem, allocation, 50, rng=0, engine=RunConfig(engine="batch")
        )
        np.testing.assert_array_equal(a, b)


class TestSerialization:
    def test_round_trip(self):
        config = RunConfig(
            engine="batch",
            comparator="reference",
            recorder="null",
            seed=17,
            replications=4,
        )
        assert RunConfig.from_dict(config.to_dict()) == config
        assert RunConfig.from_json(config.to_json()) == config

    def test_json_stable(self):
        blob = RunConfig(seed=2).to_json()
        assert json.loads(blob) == {
            "engine": None,
            "comparator": None,
            "recorder": None,
            "seed": 2,
            "replications": 1,
        }

    def test_engine_instance_serializes_by_registered_name(self):
        config = RunConfig(engine=get_engine("chunked-batch"))
        assert config.to_dict()["engine"] == "chunked-batch"

    def test_unregistered_engine_instance_rejected(self):
        from repro.perf.engine import ScalarEngine

        class Unregistered(ScalarEngine):
            name = "not-in-registry"

        with pytest.raises(ModelError):
            RunConfig(engine=Unregistered()).to_dict()

    def test_registered_comparator_callable_serializes_by_name(self):
        config = RunConfig(comparator=get_deadline_comparator("reference"))
        assert config.to_dict()["comparator"] == "reference"

    def test_generator_seed_rejected(self):
        with pytest.raises(ModelError):
            RunConfig(seed=ensure_rng(0)).to_dict()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ModelError):
            RunConfig.from_dict({"engine": None, "warp_factor": 9})

    def test_fingerprint_tracks_content(self):
        a = RunConfig(seed=1).fingerprint()
        b = RunConfig(seed=1).fingerprint()
        c = RunConfig(seed=2).fingerprint()
        assert a == b
        assert a != c
