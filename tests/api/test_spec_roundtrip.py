"""Spec serialization: from_dict(to_dict(spec)) is the identity.

Covers **every** registered experiment twice over:

* a default-constructed spec for each registry entry (so newly
  registered experiments are automatically under test), and
* hypothesis property tests drawing randomized parameters per spec
  class, pushed through a real ``json.dumps``/``json.loads`` cycle.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    BudgetSweepSpec,
    DeadlineFrontierSpec,
    DeadlineSweepSpec,
    ExperimentSpec,
    Fig2Spec,
    Fig3Spec,
    Fig4Spec,
    Fig5abSpec,
    Fig5cSpec,
    available_experiments,
    get_experiment,
    make_spec,
    register_experiment,
    spec_from_dict,
)
from repro.errors import ModelError


def _json_round_trip(spec: ExperimentSpec) -> ExperimentSpec:
    blob = json.dumps(spec.to_dict(), sort_keys=True)
    return ExperimentSpec.from_dict(json.loads(blob))


class TestEveryRegisteredExperiment:
    @pytest.mark.parametrize("name", available_experiments())
    def test_default_spec_round_trips(self, name):
        spec = get_experiment(name)()
        restored = _json_round_trip(spec)
        assert restored == spec
        assert type(restored) is type(spec)

    @pytest.mark.parametrize("name", available_experiments())
    def test_to_dict_shape(self, name):
        doc = get_experiment(name)().to_dict()
        assert doc["experiment"] == name
        assert isinstance(doc["params"], dict)
        # Strictly JSON-typed: a full dumps must succeed.
        json.dumps(doc)

    @pytest.mark.parametrize("name", available_experiments())
    def test_describe_is_jsonable(self, name):
        json.dumps(get_experiment(name).describe())


_SCENARIOS = st.sampled_from(["homo", "repe", "heter"])
_CASES = st.sampled_from(list("abcdef"))
_BUDGETS = st.lists(
    st.integers(min_value=100, max_value=10_000), min_size=1, max_size=6
)

#: Per-class randomized parameter strategies.  Every registered
#: experiment must appear here — the completeness test below enforces
#: it, so adding an experiment without extending the property coverage
#: fails loudly.
SPEC_STRATEGIES = {
    "table1": st.fixed_dictionaries({}),
    "fig2": st.fixed_dictionaries(
        {
            "scenario": _SCENARIOS,
            "case": _CASES,
            "budgets": _BUDGETS,
            "n_tasks": st.integers(1, 200),
            "scoring": st.sampled_from(["mc", "numeric"]),
            "n_samples": st.integers(1, 5000),
        }
    ),
    "fig3": st.fixed_dictionaries(
        {"n_arrivals": st.integers(1, 100), "price": st.integers(1, 20)}
    ),
    "fig4": st.fixed_dictionaries(
        {
            "prices": st.lists(st.integers(1, 30), min_size=1, max_size=6),
            "repetitions": st.integers(1, 20),
        }
    ),
    "fig5ab": st.fixed_dictionaries(
        {
            "vote_counts": st.lists(st.integers(2, 10), min_size=1, max_size=4),
            "prices": st.lists(st.integers(1, 20), min_size=1, max_size=4),
            "repetitions": st.integers(1, 20),
            "n_tasks": st.integers(1, 50),
        }
    ),
    "fig5c": st.fixed_dictionaries(
        {
            "budgets": _BUDGETS,
            "repetitions": st.tuples(
                st.integers(1, 30), st.integers(1, 30), st.integers(1, 30)
            ).map(list),
            "n_samples": st.integers(1, 2000),
        }
    ),
    "deadline-frontier": st.fixed_dictionaries(
        {
            "scenario": _SCENARIOS,
            "case": _CASES,
            "n_tasks": st.integers(1, 200),
            "n_deadlines": st.integers(2, 30),
            "confidences": st.lists(
                st.floats(0.01, 0.99, allow_nan=False), min_size=1, max_size=4
            ),
            "max_price": st.integers(1, 100),
            "deadlines": st.one_of(
                st.none(),
                st.lists(
                    st.floats(0.1, 100.0, allow_nan=False),
                    min_size=1,
                    max_size=5,
                ),
            ),
        }
    ),
    "budget-sweep": st.fixed_dictionaries(
        {
            "family": _SCENARIOS,
            "case": _CASES,
            "n_tasks": st.integers(1, 200),
            "budgets": _BUDGETS,
            "strategies": st.lists(
                st.sampled_from(["ea", "ra", "ha", "te", "re"]),
                max_size=3,
                unique=True,
            ),
            "scoring": st.sampled_from(["mc", "numeric"]),
            "n_samples": st.integers(1, 5000),
            "include_processing": st.booleans(),
        }
    ),
    "deadline-sweep": st.fixed_dictionaries(
        {
            "family": _SCENARIOS,
            "case": _CASES,
            "n_tasks": st.integers(1, 200),
            "deadlines": st.lists(
                st.floats(0.1, 100.0, allow_nan=False), min_size=1, max_size=5
            ),
            "confidences": st.lists(
                st.floats(0.01, 0.99, allow_nan=False), min_size=1, max_size=4
            ),
            "max_price": st.integers(1, 2000),
            "include_processing": st.booleans(),
        }
    ),
}


def test_property_coverage_is_complete():
    """Every registered experiment has a randomized-params strategy."""
    assert set(SPEC_STRATEGIES) == set(available_experiments())


@pytest.mark.parametrize("name", sorted(SPEC_STRATEGIES))
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_randomized_specs_round_trip(name, data):
    params = data.draw(SPEC_STRATEGIES[name])
    spec = make_spec(name, **params)
    restored = _json_round_trip(spec)
    assert restored == spec
    # And a second hop is still the identity (serialization is stable).
    assert _json_round_trip(restored) == restored


class TestDispatchAndErrors:
    def test_base_from_dict_dispatches_by_name(self):
        spec = spec_from_dict(
            {"experiment": "fig3", "params": {"n_arrivals": 7}}
        )
        assert isinstance(spec, Fig3Spec)
        assert spec.n_arrivals == 7

    def test_subclass_rejects_foreign_document(self):
        with pytest.raises(ModelError):
            Fig2Spec.from_dict({"experiment": "fig3", "params": {}})

    def test_unknown_experiment(self):
        with pytest.raises(ModelError):
            spec_from_dict({"experiment": "fig99", "params": {}})

    def test_unknown_parameter(self):
        with pytest.raises(ModelError):
            make_spec("fig2", warp_factor=9)

    def test_unknown_document_key(self):
        with pytest.raises(ModelError):
            spec_from_dict({"experiment": "fig2", "payload": {}})

    def test_lists_coerce_to_tuples(self):
        spec = make_spec("fig2", budgets=[1000, 2000])
        assert spec.budgets == (1000, 2000)

    def test_bad_param_types_fail_loudly(self):
        with pytest.raises(ModelError):
            make_spec("fig2", n_tasks="lots")
        with pytest.raises(ModelError):
            make_spec("fig5c", repetitions=[1, 2])  # needs exactly 3

    def test_registry_rejects_duplicates_and_non_dataclasses(self):
        with pytest.raises(ModelError):
            register_experiment(Fig2Spec)  # already registered

        class NotADataclass(ExperimentSpec):
            name = "not-a-dataclass"

        with pytest.raises(ModelError):
            register_experiment(NotADataclass)

    def test_specs_are_frozen_and_normalized(self):
        spec = Fig5cSpec(budgets=[600.0, 700.0], repetitions=(10, 15, 20))
        assert spec.budgets == (600, 700)
        with pytest.raises(Exception):
            spec.n_samples = 1

    def test_deadline_frontier_optional_deadlines(self):
        none_spec = DeadlineFrontierSpec()
        assert none_spec.deadlines is None
        assert _json_round_trip(none_spec) == none_spec
        grid_spec = DeadlineFrontierSpec(deadlines=[1.5, 2.5])
        assert grid_spec.deadlines == (1.5, 2.5)
        assert _json_round_trip(grid_spec) == grid_spec
