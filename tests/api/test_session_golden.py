"""Session.run(spec) is byte-identical to the legacy direct calls.

The acceptance contract of the api redesign: for every registered
experiment, running through the facade — including from a serialized
spec document — produces *exactly* the object the legacy keyword
function returns, for every engine / comparator.
"""

from __future__ import annotations

import pytest

from repro.api import (
    BudgetSweepSpec,
    DeadlineFrontierSpec,
    DeadlineSweepSpec,
    ExperimentSpec,
    Fig2Spec,
    Fig3Spec,
    Fig4Spec,
    Fig5abSpec,
    Fig5cSpec,
    RunConfig,
    RunResult,
    Session,
    Table1Spec,
)
from repro.errors import ModelError
from repro.experiments import (
    deadline_frontier_experiment,
    fig2_experiment,
    fig3_experiment,
    fig4_experiment,
    fig5ab_experiment,
    fig5c_experiment,
    motivation_example_1,
    motivation_example_2,
    run_budget_sweep,
    run_deadline_sweep,
)
from repro.workloads import scenario_family


def _run_via_document(spec, config=None):
    """The long way round: serialize, rebuild via the registry, run."""
    session = Session(config)
    return session.run(ExperimentSpec.from_dict(spec.to_dict())).payload


class TestGoldenFigures:
    def test_table1(self):
        payload = _run_via_document(Table1Spec())
        assert payload["example_1"] == motivation_example_1()
        assert payload["example_2"] == motivation_example_2()

    @pytest.mark.parametrize("engine", [None, "scalar", "batch", "chunked-batch"])
    def test_fig2_every_engine(self, engine):
        kwargs = dict(budgets=(1000, 1500), n_tasks=6, n_samples=40, seed=3)
        spec = Fig2Spec(
            scenario="homo",
            case="a",
            budgets=kwargs["budgets"],
            n_tasks=kwargs["n_tasks"],
            n_samples=kwargs["n_samples"],
        )
        legacy = fig2_experiment("homo", "a", engine=engine, **kwargs)
        config = RunConfig(seed=3, engine=engine)
        assert _run_via_document(spec, config) == legacy

    @pytest.mark.parametrize("engine", [None, "scalar", "agent-batch"])
    def test_fig3_every_engine_with_replications(self, engine):
        legacy = fig3_experiment(
            n_arrivals=6, seed=1, replications=2, engine=engine
        )
        config = RunConfig(seed=1, replications=2, engine=engine)
        assert _run_via_document(Fig3Spec(n_arrivals=6), config) == legacy

    def test_fig4_aggregate_default(self):
        legacy = fig4_experiment(prices=(5, 8), repetitions=3, seed=2)
        spec = Fig4Spec(prices=(5, 8), repetitions=3)
        assert _run_via_document(spec, RunConfig(seed=2)) == legacy

    def test_fig4_agent_engines_agree_with_legacy(self):
        spec = Fig4Spec(prices=(5, 8), repetitions=2)
        for engine in ("scalar", "agent-batch"):
            legacy = fig4_experiment(
                prices=(5, 8), repetitions=2, seed=4, replications=2,
                engine=engine,
            )
            config = RunConfig(seed=4, replications=2, engine=engine)
            assert _run_via_document(spec, config) == legacy

    def test_fig5ab(self):
        kwargs = dict(
            vote_counts=(4,), prices=(5,), repetitions=2, n_tasks=3
        )
        legacy = fig5ab_experiment(seed=6, **kwargs)
        spec = Fig5abSpec(**kwargs)
        assert _run_via_document(spec, RunConfig(seed=6)) == legacy

    def test_fig5c(self):
        legacy = fig5c_experiment(
            budgets=(600, 700), n_samples=30, seed=5
        )
        spec = Fig5cSpec(budgets=(600, 700), n_samples=30)
        assert _run_via_document(spec, RunConfig(seed=5)) == legacy

    @pytest.mark.parametrize("comparator", [None, "batched", "reference"])
    def test_deadline_frontier_every_comparator(self, comparator):
        kwargs = dict(
            scenario="repe", case="a", n_tasks=8, n_deadlines=3, max_price=12
        )
        legacy = deadline_frontier_experiment(comparator=comparator, **kwargs)
        spec = DeadlineFrontierSpec(**kwargs)
        config = RunConfig(comparator=comparator)
        assert _run_via_document(spec, config) == legacy


class TestGoldenGenericSweeps:
    def test_budget_sweep_spec_matches_runner(self):
        family = scenario_family("repe", case="a", n_tasks=6)
        legacy = run_budget_sweep(
            family,
            budgets=(600, 900),
            strategies=("ra", "te"),
            n_samples=40,
            seed=9,
            label="budget-sweep-repe(a)",
        )
        spec = BudgetSweepSpec(
            family="repe",
            case="a",
            n_tasks=6,
            budgets=(600, 900),
            strategies=("ra", "te"),
            n_samples=40,
        )
        assert _run_via_document(spec, RunConfig(seed=9)) == legacy

    def test_budget_sweep_default_strategies_are_fig2_lineup(self):
        spec = BudgetSweepSpec(
            family="homo", case="a", n_tasks=4, budgets=(400,),
            n_samples=20, scoring="numeric",
        )
        payload = Session().run(spec).payload
        assert set(payload.series) == {"ea", "bias_1", "bias_2"}

    def test_deadline_sweep_spec_matches_runner(self):
        family = scenario_family("repe", case="a", n_tasks=6)
        deadlines = (2.0, 4.0)
        legacy = run_deadline_sweep(
            family,
            deadlines=deadlines,
            confidences=(0.8,),
            max_price=10,
            label="deadline-sweep-repe(a)",
        )
        spec = DeadlineSweepSpec(
            family="repe",
            case="a",
            n_tasks=6,
            deadlines=deadlines,
            confidences=(0.8,),
            max_price=10,
        )
        assert _run_via_document(spec) == legacy


class TestSessionFacade:
    def test_run_accepts_name_document_and_spec(self):
        session = Session(RunConfig(seed=0))
        by_spec = session.run(Table1Spec()).payload
        by_doc = session.run({"experiment": "table1", "params": {}}).payload
        by_name = session.run("table1").payload
        assert by_spec == by_doc == by_name
        assert session.runs_completed == 3

    def test_run_many_matches_individual_runs(self):
        specs = [
            Fig2Spec(
                scenario="homo", case=c, budgets=(800,), n_tasks=4,
                n_samples=20,
            )
            for c in ("a", "b")
        ]
        config = RunConfig(seed=7)
        batched = Session(config).run_many(specs)
        singles = [Session(config).run(s) for s in specs]
        assert [r.payload for r in batched] == [r.payload for r in singles]

    def test_isolated_session_is_bit_identical_to_shared(self):
        specs = [
            DeadlineFrontierSpec(
                scenario="repe", case="a", n_tasks=5, n_deadlines=3,
                max_price=8, confidences=(c,),
            )
            for c in (0.7, 0.9)
        ]
        shared = Session().run_many(specs)
        cold = Session(isolated=True).run_many(specs)
        assert [r.payload for r in shared] == [r.payload for r in cold]

    def test_rejects_unapplied_recorder_policy(self):
        # Built-in figures compute outputs from their own trace records
        # (uses_recorder=False): a requested policy would be a silent
        # no-op baked into the fingerprint, so run() must refuse it.
        session = Session(RunConfig(recorder="null"))
        with pytest.raises(ModelError, match="recorder"):
            session.run(Fig3Spec(n_arrivals=3))
        with pytest.raises(ModelError, match="recorder"):
            Session(RunConfig(recorder="trace")).run(Table1Spec())

    def test_custom_spec_can_consume_recorder_policy(self):
        from dataclasses import dataclass

        from repro.api import register_experiment
        from repro.api.spec import _EXPERIMENTS
        from repro.market.trace import NULL_RECORDER

        @dataclass(frozen=True)
        class RecorderProbeSpec(ExperimentSpec):
            name = "recorder-probe"
            uses_recorder = True

            def run(self, session):
                return session.resolved.make_recorders(2)

        register_experiment(RecorderProbeSpec)
        try:
            assert Session(RunConfig(recorder="null")).run(
                RecorderProbeSpec()
            ).payload is NULL_RECORDER
            traces = Session(RunConfig(recorder="trace")).run(
                RecorderProbeSpec()
            ).payload
            assert len(traces) == 2
            assert Session().run(RecorderProbeSpec()).payload is None
        finally:
            _EXPERIMENTS.pop("recorder-probe", None)

    def test_rejects_non_config(self):
        with pytest.raises(ModelError):
            Session(config={"engine": "batch"})

    def test_rejects_unrunnable_spec(self):
        with pytest.raises(ModelError):
            Session().run(42)


class TestRunResult:
    def _result(self) -> RunResult:
        spec = Fig2Spec(
            scenario="homo", case="a", budgets=(800,), n_tasks=4,
            n_samples=20,
        )
        return Session(RunConfig(seed=1, engine="batch")).run(spec)

    def test_fingerprint_is_stable_and_config_sensitive(self):
        a = self._result()
        b = self._result()
        assert a.fingerprint == b.fingerprint
        other = Session(RunConfig(seed=2, engine="batch")).run(a.spec)
        assert other.fingerprint != a.fingerprint

    def test_to_dict_is_json_serializable(self):
        import json

        doc = self._result().to_dict()
        blob = json.dumps(doc)
        assert doc["experiment"] == "fig2"
        assert doc["spec"]["params"]["budgets"] == [800]
        assert doc["config"]["engine"] == "batch"
        assert len(doc["fingerprint"]) == 16
        assert "series" in doc["payload"]
        assert json.loads(blob) == doc

    def test_tuple_keyed_payloads_serialize(self):
        result = Session(RunConfig(seed=3)).run(
            Fig5abSpec(vote_counts=(4,), prices=(5,), repetitions=2, n_tasks=2)
        )
        doc = result.to_dict()
        assert "4,5" in doc["payload"]["mean_phase1"]

    def test_generator_seed_runs_but_cannot_fingerprint(self):
        from repro.stats import ensure_rng

        result = Session(RunConfig(seed=ensure_rng(0))).run(Table1Spec())
        assert result.payload["example_1"] == motivation_example_1()
        with pytest.raises(ModelError):
            result.fingerprint
