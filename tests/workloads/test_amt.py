"""Unit tests for repro.workloads.amt (the calibrated AMT substitute)."""

from __future__ import annotations

import pytest

from repro.inference import paper_amt_rates
from repro.workloads import (
    AMT_VOTE_ATTRACTIVENESS,
    AMT_VOTE_PROCESSING_SECONDS,
    amt_market,
    amt_pricing_model,
    amt_task_type,
    amt_worker_pool,
)


class TestAmtPricingModel:
    def test_fits_paper_points(self):
        model = amt_pricing_model()
        prices, rates = paper_amt_rates()
        for p, r in zip(prices, rates):
            assert model(p) == pytest.approx(r, rel=0.5)

    def test_increasing_in_price(self):
        model = amt_pricing_model()
        assert model(12) > model(5)

    def test_rates_are_seconds_scale(self):
        # AMT acceptance takes minutes: rates well below 1 per second.
        model = amt_pricing_model()
        assert model(5) < 0.1


class TestAmtTaskType:
    def test_difficulty_ladder(self):
        easy = amt_task_type(4)
        hard = amt_task_type(8)
        assert easy.processing_rate > hard.processing_rate
        assert easy.attractiveness > hard.attractiveness

    def test_processing_means_match_table(self):
        for votes, seconds in AMT_VOTE_PROCESSING_SECONDS.items():
            t = amt_task_type(votes)
            assert 1.0 / t.processing_rate == pytest.approx(seconds)

    def test_unknown_votes(self):
        with pytest.raises(KeyError):
            amt_task_type(5)


class TestAmtMarket:
    def test_harder_tasks_accepted_slower(self):
        market = amt_market()
        easy = amt_task_type(4)
        hard = amt_task_type(8)
        assert market.onhold_rate(easy, 8) > market.onhold_rate(hard, 8)

    def test_price_raises_rate(self):
        market = amt_market()
        t = amt_task_type(4)
        assert market.onhold_rate(t, 12) > market.onhold_rate(t, 5)


class TestAmtWorkerPool:
    def test_default_arrival_rate_matches_calibration(self):
        pool = amt_worker_pool()
        assert pool.arrival_rate == pytest.approx(amt_pricing_model()(5))

    def test_explicit_rate(self):
        pool = amt_worker_pool(arrival_rate=0.5)
        assert pool.arrival_rate == 0.5
