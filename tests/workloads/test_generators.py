"""Unit tests for repro.workloads.generators."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.workloads import (
    many_groups_problem,
    random_problem,
    skewed_repetition_problem,
)


class TestRandomProblem:
    def test_feasible(self):
        problem = random_problem(20, seed=0)
        assert problem.budget >= problem.min_feasible_budget

    def test_deterministic(self):
        a = random_problem(10, seed=3)
        b = random_problem(10, seed=3)
        assert [t.repetitions for t in a.tasks] == [
            t.repetitions for t in b.tasks
        ]

    def test_respects_bounds(self):
        problem = random_problem(30, max_repetitions=4, n_types=3, seed=1)
        assert all(1 <= t.repetitions <= 4 for t in problem.tasks)
        assert len({t.type_name for t in problem.tasks}) <= 3

    def test_validation(self):
        with pytest.raises(ModelError):
            random_problem(0)
        with pytest.raises(ModelError):
            random_problem(5, max_repetitions=0)
        with pytest.raises(ModelError):
            random_problem(5, n_types=0)
        with pytest.raises(ModelError):
            random_problem(5, budget_per_repetition=0.5)

    def test_explicit_pricing_models(self):
        from repro.market import LinearPricing

        models = [LinearPricing(1.0, 1.0), LinearPricing(2.0, 1.0)]
        problem = random_problem(10, n_types=2, pricing_models=models, seed=0)
        assert {t.pricing for t in problem.tasks} <= set(models)

    def test_short_pricing_list_rejected(self):
        from repro.market import LinearPricing

        with pytest.raises(ModelError):
            random_problem(
                10, n_types=3, pricing_models=[LinearPricing(1.0, 1.0)], seed=0
            )


class TestSkewedRepetitionProblem:
    def test_structure(self):
        problem = skewed_repetition_problem(
            20, budget=1000, heavy_fraction=0.1, heavy_repetitions=20,
            light_repetitions=2,
        )
        reps = sorted({t.repetitions for t in problem.tasks})
        assert reps == [2, 20]
        heavy = sum(1 for t in problem.tasks if t.repetitions == 20)
        assert heavy == 2

    def test_fraction_validation(self):
        with pytest.raises(ModelError):
            skewed_repetition_problem(10, budget=1000, heavy_fraction=0.0)


class TestManyGroupsProblem:
    def test_group_count(self):
        problem = many_groups_problem(8, 3, seed=0)
        # Distinct pricing objects per group keep groups separate even
        # when (reps, λ_p) collide.
        assert len(problem.groups()) == 8
        assert problem.num_tasks == 24

    def test_validation(self):
        with pytest.raises(ModelError):
            many_groups_problem(0, 2)
        with pytest.raises(ModelError):
            many_groups_problem(2, 0)
