"""Unit tests for repro.workloads.scenarios (Fig. 2 settings)."""

from __future__ import annotations

import pytest

from repro import Scenario
from repro.errors import ModelError
from repro.workloads import (
    PAPER_BUDGETS,
    heterogeneous_workload,
    homogeneity_workload,
    repetition_workload,
    scenario_workload,
)


class TestPaperBudgets:
    def test_matches_paper_sweep(self):
        assert PAPER_BUDGETS[0] == 1000
        assert PAPER_BUDGETS[-1] == 5000
        assert all(b - a == 500 for a, b in zip(PAPER_BUDGETS, PAPER_BUDGETS[1:]))


class TestHomogeneityWorkload:
    def test_paper_defaults(self):
        problem = homogeneity_workload(2500)
        assert problem.num_tasks == 100
        assert all(t.repetitions == 5 for t in problem.tasks)
        assert all(t.processing_rate == 2.0 for t in problem.tasks)
        assert problem.scenario() is Scenario.HOMOGENEITY

    def test_all_six_cases(self):
        for case in "abcdef":
            problem = homogeneity_workload(1000, case=case)
            assert problem.budget == 1000

    def test_unknown_case(self):
        with pytest.raises(ModelError):
            homogeneity_workload(1000, case="q")


class TestRepetitionWorkload:
    def test_paper_defaults(self):
        problem = repetition_workload(2500)
        assert problem.num_tasks == 100
        reps = sorted({t.repetitions for t in problem.tasks})
        assert reps == [3, 5]
        counts = [
            sum(1 for t in problem.tasks if t.repetitions == r) for r in reps
        ]
        assert counts == [50, 50]
        assert problem.scenario() is Scenario.REPETITION

    def test_groups(self):
        problem = repetition_workload(2500)
        assert len(problem.groups()) == 2

    def test_split_validation(self):
        with pytest.raises(ModelError):
            repetition_workload(2500, repetition_split=(3,))


class TestHeterogeneousWorkload:
    def test_paper_defaults(self):
        problem = heterogeneous_workload(2500)
        assert problem.num_tasks == 100
        assert problem.scenario() is Scenario.HETEROGENEOUS
        rates = sorted({t.processing_rate for t in problem.tasks})
        assert rates == [2.0, 3.0]

    def test_two_groups(self):
        problem = heterogeneous_workload(2500)
        assert len(problem.groups()) == 2


class TestScenarioDispatch:
    def test_dispatch(self):
        assert scenario_workload("homo", 1000).scenario() is Scenario.HOMOGENEITY
        assert scenario_workload("repe", 1000).scenario() is Scenario.REPETITION
        assert (
            scenario_workload("heter", 1000).scenario()
            is Scenario.HETEROGENEOUS
        )

    def test_unknown(self):
        with pytest.raises(ModelError):
            scenario_workload("quantum", 1000)
