"""Unit tests for repro.workloads.families (ProblemFamily)."""

from __future__ import annotations

import functools

import pytest

from repro.core import STRATEGIES, Scenario
from repro.errors import InfeasibleAllocationError, ModelError
from repro.workloads import (
    ProblemFamily,
    as_problem_family,
    heterogeneous_family,
    homogeneity_family,
    homogeneity_workload,
    repetition_family,
    repetition_workload,
    scenario_family,
    scenario_workload,
)


class TestProblemFamily:
    def test_problem_at_shares_specs_and_groups(self):
        family = repetition_family(n_tasks=10)
        a = family.problem_at(100)
        b = family.problem_at(200)
        assert a.tasks is b.tasks is family.tasks
        assert a.groups() is b.groups() is family.groups
        assert a.budget == 100 and b.budget == 200

    def test_family_is_callable_factory(self):
        family = homogeneity_family(n_tasks=6, repetitions=2)
        problem = family(40)
        assert problem.budget == 40
        assert problem.num_tasks == 6

    def test_matches_workload_factories(self):
        family = repetition_family(n_tasks=8)
        legacy = repetition_workload(100, n_tasks=8)
        fam = family.problem_at(100)
        assert fam.tasks == legacy.tasks
        assert [g.key for g in fam.groups()] == [
            g.key for g in legacy.groups()
        ]

    def test_infeasible_budget_raises(self):
        family = homogeneity_family(n_tasks=4, repetitions=2)
        with pytest.raises(InfeasibleAllocationError):
            family.problem_at(family.min_feasible_budget - 1)

    def test_empty_tasks_rejected(self):
        with pytest.raises(ModelError):
            ProblemFamily([])

    def test_foreign_groups_rejected(self):
        """Regression: a group partition built from a *different* task
        set (same shape, different pricing) must not be accepted."""
        from repro.core import HTuningProblem
        from repro.workloads import homogeneity_tasks

        family_a = homogeneity_family(case="a", n_tasks=4, repetitions=2)
        tasks_f = homogeneity_tasks(case="f", n_tasks=4, repetitions=2)
        with pytest.raises(ModelError):
            HTuningProblem(tasks_f, 100, groups=family_a.groups)

    def test_tuning_one_budget_does_not_mutate_other_budgets(self):
        """The sharing invariant: one budget's tuning must not leak
        into the specs/groups another budget's problem sees."""
        family = heterogeneous_family(n_tasks=10)
        before_specs = family.problem_at(200).tasks
        snapshot = [
            (t.task_id, t.repetitions, t.processing_rate, t.type_name)
            for t in before_specs
        ]
        group_snapshot = [
            (g.key, g.size, g.unit_cost) for g in family.groups
        ]
        # Tune several budgets through every registered strategy.
        import numpy as np

        for budget in (150, 300, 450):
            problem = family.problem_at(budget)
            for name in ("ha", "ra", "te", "re", "uniform"):
                STRATEGIES[name](problem, np.random.default_rng(0))
        after = family.problem_at(200)
        assert after.tasks is before_specs
        assert [
            (t.task_id, t.repetitions, t.processing_rate, t.type_name)
            for t in after.tasks
        ] == snapshot
        assert [
            (g.key, g.size, g.unit_cost) for g in family.groups
        ] == group_snapshot


class TestFromFactory:
    def test_adapts_legacy_closure(self):
        factory = functools.partial(homogeneity_workload, n_tasks=5, repetitions=2)
        family = ProblemFamily.from_factory(factory)
        assert family.num_tasks == 5
        assert family.problem_at(50).tasks == factory(50).tasks

    def test_probe_budget_explicit(self):
        factory = functools.partial(repetition_workload, n_tasks=6)
        family = ProblemFamily.from_factory(factory, probe_budget=100)
        assert family.num_tasks == 6


class TestScenarioFamily:
    def test_dispatch(self):
        assert (
            scenario_family("homo").problem_at(1000).scenario()
            is Scenario.HOMOGENEITY
        )
        assert (
            scenario_family("repe").problem_at(1000).scenario()
            is Scenario.REPETITION
        )
        assert (
            scenario_family("heter").problem_at(1000).scenario()
            is Scenario.HETEROGENEOUS
        )

    def test_unknown_scenario(self):
        with pytest.raises(ModelError):
            scenario_family("quantum")

    def test_scenario_workload_routes_through_family(self):
        fam = scenario_family("repe", n_tasks=12)
        assert scenario_workload("repe", 500, n_tasks=12).tasks == fam.tasks


class TestAsProblemFamily:
    def test_family_passthrough(self):
        family = homogeneity_family(n_tasks=4, repetitions=2)
        builder, fam = as_problem_family(family)
        assert fam is family
        assert builder(40).budget == 40

    def test_legacy_closure_not_adapted(self):
        factory = functools.partial(homogeneity_workload, n_tasks=4, repetitions=2)
        builder, fam = as_problem_family(factory)
        assert fam is None
        assert builder(40).num_tasks == 4

    def test_rejects_non_callable(self):
        with pytest.raises(ModelError):
            as_problem_family(42)
