"""``"async"`` executor: asyncio dispatch certified executor-invariant.

Tier-1 runs everything with a serial inner executor (no subprocesses);
the process-inner variant is gated behind ``REPRO_EXEC_TESTS=1`` like
the rest of the pool suite.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import RunConfig, Session
from repro.errors import ModelError, RegistryError
from repro.exec import (
    AsyncExecutor,
    ExecTask,
    available_executors,
    get_executor,
)

from exec_tiny import requires_process_pool, tiny_specs


def _tiny_tasks(config=None):
    config_doc = (config or RunConfig()).to_dict()
    return [
        ExecTask(index=i, spec=spec.to_dict(), config=config_doc)
        for i, spec in enumerate(tiny_specs())
    ]


@pytest.fixture()
def async_serial():
    executor = AsyncExecutor(inner="serial", workers=2)
    yield executor
    executor.close()


class TestRegistration:
    def test_async_is_registered(self):
        assert "async" in available_executors()
        assert get_executor("async").name == "async"

    def test_typo_suggests_async(self):
        with pytest.raises(RegistryError, match="did you mean 'async'"):
            get_executor("asinc")

    def test_default_inner_is_the_supervised_pool(self):
        assert get_executor("async").inner == "process"

    def test_workers_validated(self):
        with pytest.raises(ModelError, match="workers"):
            AsyncExecutor(workers=0)

    def test_executor_never_serializes(self):
        # Same orchestration-is-not-identity rule as serial/process:
        # an async run must share fingerprints and golden documents.
        doc = RunConfig(executor="async").to_dict()
        assert "executor" not in doc
        assert doc == RunConfig().to_dict()
        assert (
            RunConfig(executor="async").fingerprint()
            == RunConfig().fingerprint()
        )


class TestAsyncDispatch:
    def test_outcomes_byte_identical_to_serial(self, async_serial):
        tasks = _tiny_tasks()
        wired = async_serial.run_tasks(tasks)
        serial = get_executor("serial").run_tasks(tasks)
        assert {o.index for o in wired} == {o.index for o in serial}
        by_index = {o.index: o for o in wired}
        for ref in serial:
            got = by_index[ref.index]
            assert got.status == ref.status
            assert json.dumps(got.result, sort_keys=True) == json.dumps(
                ref.result, sort_keys=True
            )

    def test_on_complete_fires_per_task(self, async_serial):
        seen = []
        async_serial.run_tasks(
            _tiny_tasks(), on_complete=lambda task, outcome: seen.append(task.index)
        )
        assert sorted(seen) == [0, 1, 2]

    def test_failed_outcome_surfaces_not_raises(self, async_serial):
        bad = ExecTask(
            index=0,
            spec={"experiment": "fig2", "params": {"n_tasks": -3}},
            config=RunConfig().to_dict(),
        )
        (outcome,) = async_serial.run_tasks([bad])
        assert outcome.status == "failed"
        assert outcome.error["code"]

    def test_fail_fast_stops_after_failure(self):
        executor = AsyncExecutor(inner="serial", workers=1)
        bad = ExecTask(
            index=0,
            spec={"experiment": "fig2", "params": {"n_tasks": -3}},
            config=RunConfig().to_dict(),
        )
        tasks = [bad] + _tiny_tasks()[1:]
        outcomes = executor.run_tasks(tasks, fail_fast=True)
        executor.close()
        assert outcomes[0].status == "failed"
        assert len(outcomes) < len(tasks)

    def test_sync_entry_rejected_inside_event_loop(self, async_serial):
        async def call_blocking():
            async_serial.run_tasks(_tiny_tasks())

        with pytest.raises(ModelError, match="run_tasks_async"):
            asyncio.run(call_blocking())

    def test_async_entry_from_a_loop(self, async_serial):
        async def drive():
            return await async_serial.run_tasks_async(_tiny_tasks())

        outcomes = asyncio.run(drive())
        assert sorted(o.index for o in outcomes) == [0, 1, 2]
        assert all(o.status == "succeeded" for o in outcomes)


class TestSessionIntegration:
    def test_run_many_report_byte_identical_to_serial(self):
        executor = AsyncExecutor(inner="serial", workers=2)
        config = RunConfig(seed=11)
        wired = Session(config).run_many(tiny_specs(), executor=executor)
        inline = Session(config).run_many(tiny_specs(), executor="serial")
        executor.close()
        assert wired.ok and inline.ok
        assert json.dumps(wired.to_dict(), sort_keys=True) == json.dumps(
            inline.to_dict(), sort_keys=True
        )


@requires_process_pool
class TestProcessInner:
    def test_process_inner_matches_serial(self):
        executor = AsyncExecutor(inner="process", workers=2)
        tasks = _tiny_tasks()
        wired = executor.run_tasks(tasks)
        executor.close()
        serial = get_executor("serial").run_tasks(tasks)
        ref = {o.index: json.dumps(o.result, sort_keys=True) for o in serial}
        got = {o.index: json.dumps(o.result, sort_keys=True) for o in wired}
        assert got == ref
