"""Phase-kernel warm-up: the cache snapshot shipped to pool workers.

The in-process half (export / rebuild round-trip, bitwise ladder
equality, malformed-snapshot tolerance) is tier-1; the handshake test
that spawns a real pool rides the ``REPRO_EXEC_TESTS=1`` gate with the
rest of the process-pool suite.
"""

from __future__ import annotations

import numpy as np

from repro.api import RunConfig, Session, make_spec
from repro.exec import ProcessExecutor
from repro.perf.cache import (
    clear_phase_caches,
    export_ladder_state,
    phase_cache_stats,
    survival_weights,
    warm_ladders,
)

from exec_tiny import requires_process_pool, tiny_specs


class TestExportWarmRoundTrip:
    def setup_method(self):
        clear_phase_caches()

    def teardown_method(self):
        clear_phase_caches()

    def test_rebuilt_ladders_are_bitwise_identical(self):
        profiles = [(1.0, 2.0), (0.5,), (3.0, 1.5, 0.25)]
        originals = {
            p: np.array(survival_weights(p, 40)) for p in profiles
        }
        state = export_ladder_state()
        assert sorted(tuple(rates) for rates, _ in state) == sorted(profiles)
        clear_phase_caches()
        assert warm_ladders(state) == len(profiles)
        for profile, weights in originals.items():
            rebuilt = survival_weights(profile, 40)
            assert np.array_equal(rebuilt, weights)
        # The rebuilds were cold builds, not hits.
        stats = phase_cache_stats()
        assert stats["ladder_entries"] == len(profiles)

    def test_warm_is_idempotent_and_never_shrinks(self):
        survival_weights((1.0, 2.0), 60)
        state = export_ladder_state()
        assert warm_ladders(state) == 0  # already at least as long
        # A shorter snapshot never truncates the warm ladder.
        assert warm_ladders([[[1.0, 2.0], 5]]) == 0
        assert len(survival_weights((1.0, 2.0), 60)) == 60

    def test_export_limit_drops_least_recent_first(self):
        for i in range(5):
            survival_weights((1.0 + i,), 8)
        state = export_ladder_state(limit=2)
        assert [rates for rates, _ in state] == [[4.0], [5.0]]
        assert export_ladder_state(limit=None) and len(
            export_ladder_state(limit=None)
        ) == 5

    def test_malformed_snapshots_are_ignored(self):
        bad = [
            "not-a-pair",
            [[], 10],          # empty profile
            [[1.0], 0],        # no terms requested
            [[1.0], "many"],   # unparsable count
            None,
        ]
        assert warm_ladders(bad) == 0
        assert warm_ladders(None) == 0
        assert warm_ladders([*bad, [[2.5], 12]]) == 1

    def test_session_runs_leave_an_exportable_state(self):
        # The deadline comparators are the heavy ladder users: a tiny
        # frontier run leaves a rich snapshot behind.
        spec = make_spec(
            "deadline-frontier", n_tasks=5, n_deadlines=2, max_price=8
        )
        Session(RunConfig()).run(spec)
        state = export_ladder_state()
        assert state, "tiny frontier run should have built ladders"
        clear_phase_caches()
        assert warm_ladders(state) == len(state)


@requires_process_pool
class TestPoolWarmup:
    def test_spawned_workers_receive_the_parent_snapshot(self):
        # Warm the parent caches with one spec, then fan a batch out:
        # the spawn events must record a non-empty warm-up shipment,
        # and the pooled report stays byte-identical to the inline one.
        clear_phase_caches()
        session = Session(RunConfig())
        session.run(
            make_spec(
                "deadline-frontier", n_tasks=5, n_deadlines=2, max_price=8
            )
        )
        assert export_ladder_state()
        pooled = session.run_many(
            tiny_specs(),
            executor=ProcessExecutor(workers=2, heartbeat_interval=0.02),
        )
        spawned = [
            e for e in pooled.events if e["type"] == "worker.spawned"
        ]
        assert len(spawned) == 2
        assert all(e["warmup"] > 0 for e in spawned)
        inline = Session(RunConfig()).run_many(tiny_specs())
        assert pooled.to_json() == inline.to_json()

    def test_cold_parent_ships_no_snapshot(self):
        clear_phase_caches()
        pooled = Session(RunConfig()).run_many(
            [tiny_specs()[1]],  # fig3: market path, no ladders needed
            executor=ProcessExecutor(workers=1, heartbeat_interval=0.02),
        )
        spawned = [
            e for e in pooled.events if e["type"] == "worker.spawned"
        ]
        assert spawned and all(e["warmup"] == 0 for e in spawned)
