"""Executor registry + did-you-mean hints across every registry."""

from __future__ import annotations

import pytest

from repro.api import RunConfig
from repro.errors import ModelError, RegistryError
from repro.exec import (
    DEFAULT_EXECUTOR,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    available_executors,
    get_executor,
    register_executor,
    resolve_executor,
)


class TestExecutorRegistry:
    def test_builtins_are_registered(self):
        names = available_executors()
        assert "serial" in names
        assert "process" in names

    def test_none_defaults_to_serial(self):
        assert DEFAULT_EXECUTOR == "serial"
        assert get_executor(None).name == "serial"

    def test_instances_pass_through(self):
        executor = SerialExecutor()
        assert get_executor(executor) is executor
        assert resolve_executor(executor) is executor

    def test_resolve_unwraps_config_objects(self):
        assert resolve_executor(RunConfig(executor="process")).name == "process"
        assert resolve_executor(RunConfig()).name == "serial"
        pool = ProcessExecutor(workers=1)
        assert resolve_executor(RunConfig(executor=pool)) is pool

    def test_register_rejects_duplicates_and_anonymous(self):
        with pytest.raises(ModelError, match="already registered"):
            register_executor(SerialExecutor())

        class Nameless(Executor):
            name = ""

        with pytest.raises(ModelError, match="non-empty name"):
            register_executor(Nameless())

    def test_register_replace_overrides(self):
        custom = SerialExecutor()
        register_executor(custom, name="serial", replace=True)
        try:
            assert get_executor("serial") is custom
        finally:
            register_executor(SerialExecutor(), name="serial", replace=True)

    def test_config_rejects_non_executor_values(self):
        with pytest.raises(ModelError, match="executor"):
            RunConfig(executor=42)

    def test_executor_never_serializes(self):
        # Orchestration is not run identity: serial and process runs
        # must share fingerprints, checkpoints, and golden documents.
        doc = RunConfig(executor="process").to_dict()
        assert "executor" not in doc
        assert doc == RunConfig().to_dict()
        assert (
            RunConfig(executor="process").fingerprint()
            == RunConfig().fingerprint()
        )


class TestDidYouMean:
    """Every registry suggests the nearest name on a typo'd lookup."""

    def test_executor(self):
        with pytest.raises(RegistryError) as exc:
            get_executor("proces")
        assert "unknown executor" in str(exc.value)
        assert "did you mean 'process'?" in str(exc.value)

    def test_engine(self):
        from repro.perf.engine import get_engine

        with pytest.raises(RegistryError) as exc:
            get_engine("scaler")
        assert "did you mean 'scalar'?" in str(exc.value)

    def test_comparator(self):
        from repro.perf.deadline import get_deadline_comparator

        with pytest.raises(RegistryError) as exc:
            get_deadline_comparator("bathced")
        assert "did you mean 'batched'?" in str(exc.value)

    def test_experiment(self):
        from repro.api import make_spec

        with pytest.raises(RegistryError) as exc:
            make_spec("fig22")
        assert "did you mean 'fig2'?" in str(exc.value)

    def test_family(self):
        from repro.workloads.families import get_family_builder

        with pytest.raises(RegistryError) as exc:
            get_family_builder("hetero")
        assert "did you mean 'heter'?" in str(exc.value)

    def test_fault_plan(self):
        from repro.resilience.faults import (
            FaultPlan,
            get_fault_plan,
            register_fault_plan,
        )

        register_fault_plan(
            "exec-suite-chaos",
            FaultPlan(rules=({"site": "run.start", "at": [0]},)),
            replace=True,
        )
        with pytest.raises(RegistryError) as exc:
            get_fault_plan("exec-suite-chaso")
        assert "did you mean 'exec-suite-chaos'?" in str(exc.value)

    def test_no_suggestion_when_nothing_is_close(self):
        with pytest.raises(RegistryError) as exc:
            get_executor("zzzzzzzz")
        message = str(exc.value)
        assert "did you mean" not in message
        assert "'process'" in message  # still lists what exists
