"""Tiny batch specs + gating for the executor suite.

The executor tests reuse the resilience suite's tiny parameter sets so
a three-spec batch stays tier-1 cheap.  Process-pool tests spawn real
subprocesses and are gated behind ``REPRO_EXEC_TESTS=1`` — tier-1
stays serial-only; the ``parallel-executor`` CI job flips the gate.
"""

from __future__ import annotations

import os

import pytest

from repro.api import make_spec

#: experiment name -> smallest sensible parameter overrides (a subset
#: of the resilience suite's TINY_PARAMS covering three run paths:
#: budget sweep, market replication, inference).
TINY_PARAMS = {
    "fig2": {"n_tasks": 4, "n_samples": 20, "budgets": [800]},
    "fig3": {"n_arrivals": 3},
    "fig4": {"prices": [5, 8], "repetitions": 2},
}

#: Marker gating tests that spawn a real worker pool.
requires_process_pool = pytest.mark.skipif(
    os.environ.get("REPRO_EXEC_TESTS") != "1",
    reason="process-pool tests run in the parallel-executor CI job "
    "(set REPRO_EXEC_TESTS=1 to enable)",
)


def tiny_specs():
    """A fresh three-spec batch (fig2 / fig3 / fig4, tiny params)."""
    return [make_spec(name, **params) for name, params in TINY_PARAMS.items()]


def tiny_spec_documents():
    """The same batch as inline JSON-able spec documents (CLI form)."""
    return [spec.to_dict() for spec in tiny_specs()]
