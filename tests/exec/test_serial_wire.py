"""Serial executor: the wire format certified byte-identical in-process."""

from __future__ import annotations

import pytest

from repro.api import RunConfig, Session
from repro.api.session import RunResult
from repro.errors import ModelError
from repro.exec import ExecTask, TaskOutcome
from repro.exec.base import execute_task_inline

from exec_tiny import tiny_specs


class TestExecTask:
    def test_run_task_needs_documents(self):
        with pytest.raises(ModelError, match="spec and config"):
            ExecTask(index=0, kind="run")

    def test_call_task_needs_triple(self):
        with pytest.raises(ModelError, match="triple"):
            ExecTask(index=0, kind="call")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError, match="unknown task kind"):
            ExecTask(index=0, kind="thread")

    def test_payload_is_the_wire_form(self):
        spec_doc = tiny_specs()[0].to_dict()
        config_doc = RunConfig().to_dict()
        task = ExecTask(index=0, kind="run", spec=spec_doc, config=config_doc)
        assert task.payload == (spec_doc, config_doc)
        call = (max, (1, 2), {})
        assert ExecTask(index=1, kind="call", call=call).payload == call


class TestInlineExecution:
    def test_run_task_round_trips_documents(self):
        spec = tiny_specs()[0]
        config = RunConfig()
        task = ExecTask(
            index=0, kind="run", spec=spec.to_dict(), config=config.to_dict()
        )
        outcome = execute_task_inline(task)
        assert outcome.ok
        assert outcome.status == "succeeded"
        # the wire result document restores to the direct run, byte-for-byte
        direct = Session(config).run(spec)
        restored = RunResult.from_document(outcome.result)
        assert restored.to_dict() == direct.to_dict()

    def test_failure_becomes_an_error_document(self):
        config = RunConfig(
            faults={"rules": [{"site": "run.start", "at": [0]}]}
        )
        task = ExecTask(
            index=0,
            kind="run",
            spec=tiny_specs()[0].to_dict(),
            config=config.to_dict(),
        )
        outcome = execute_task_inline(task)
        assert not outcome.ok
        assert outcome.status == "failed"
        assert outcome.error["code"] == "fault-injected"
        assert outcome.error["site"] == "run.start"
        # the captured document still addresses the run
        assert outcome.error["spec"]["experiment"] == "fig2"
        assert outcome.error["fingerprint"]

    def test_call_task_runs_picklable_function(self):
        task = ExecTask(index=0, kind="call", call=(max, (3, 7), {}))
        outcome = execute_task_inline(task)
        assert outcome.ok
        assert outcome.result == 7


class TestSerialBatch:
    def test_clean_batch_byte_identical_to_inline_loop(self):
        inline = Session(RunConfig()).run_many(tiny_specs())
        wired = Session(RunConfig()).run_many(tiny_specs(), executor="serial")
        assert wired.to_json() == inline.to_json()
        assert [o.status for o in wired.outcomes] == ["succeeded"] * 3
        # serial executors emit no supervisor events
        assert wired.events == ()
        assert "events" not in wired.to_dict()
        assert wired.to_dict(include_events=True)["events"] == []

    def test_failing_batch_byte_identical_to_inline_loop(self):
        # fig3 reaches market.replication; fig2/fig4 do not.
        config = RunConfig(
            faults={"rules": [{"site": "market.replication", "at": [0]}]}
        )
        inline = Session(config).run_many(tiny_specs())
        wired = Session(config).run_many(tiny_specs(), executor="serial")
        assert wired.to_json() == inline.to_json()
        assert not wired.ok
        statuses = {o.spec.name: o.status for o in wired.outcomes}
        assert statuses == {
            "fig2": "succeeded", "fig3": "failed", "fig4": "succeeded",
        }

    def test_config_executor_field_selects_the_fanout(self):
        wired = Session(RunConfig(executor="serial")).run_many(tiny_specs())
        inline = Session(RunConfig()).run_many(tiny_specs())
        assert wired.to_json() == inline.to_json()

    def test_checkpoint_resume_through_the_wire_path(self, tmp_path):
        journal = tmp_path / "batch.jsonl"
        config = RunConfig()
        specs = tiny_specs()
        # first pass journals everything ...
        first = Session(config).run_many(
            specs, checkpoint=journal, executor="serial"
        )
        assert first.ok
        # ... second pass restores without re-running, byte-identically
        second = Session(config).run_many(
            tiny_specs(), checkpoint=journal, executor="serial"
        )
        assert second.to_json() == first.to_json()
        assert all(o.restored for o in second.outcomes)

    def test_outcome_ok_property(self):
        assert TaskOutcome(index=0, status="succeeded").ok
        assert TaskOutcome(index=0, status="degraded").ok
        assert not TaskOutcome(index=0, status="failed").ok
