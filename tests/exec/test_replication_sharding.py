"""Sharded replication ensembles: split, merge, and identity contracts.

The contract under test (module docstring of :mod:`repro.exec.shard`):
in-process sharding (``executor=None``) is **fully bit-identical** to
the sequential fan-out — process-global task-uid / worker-id counters
advance in replication order; executor-backed sharding is
**trajectory-identical** modulo a per-shard constant in those process
counters, which the comparisons below normalize away exactly like the
lock-step engine suite does.
"""

from __future__ import annotations

import pytest

from repro.errors import ModelError, RemoteTaskError, SimulationError
from repro.exec import (
    SerialExecutor,
    sharded_run_replications,
    split_replications,
)
from repro.market import AgentSimulator, TaskType, WorkerPool
from repro.market.simulator import AtomicTaskOrder
from repro.perf.engine import resolve_engine
from repro.resilience.faults import FaultPlan, runtime_scope
from repro.stats.rng import replication_seeds

from exec_tiny import requires_process_pool

ENGINES = ("scalar", "batch", "agent-batch")


def make_orders(n_tasks=6):
    easy = TaskType(name="easy", processing_rate=2.0, accuracy=0.9)
    hard = TaskType(name="hard", processing_rate=1.3, accuracy=0.6)
    return [
        AtomicTaskOrder(
            task_type=easy if i % 2 == 0 else hard,
            prices=tuple(1 + (i + k) % 4 for k in range(2)),
            atomic_task_id=i,
        )
        for i in range(n_tasks)
    ]


def make_sim(seed=999):
    return AgentSimulator(WorkerPool(arrival_rate=5.0), seed=seed)


def trajectory(result):
    """Everything observable about a replication, uids made relative."""
    records = result.trace.records
    base_uid = records[0].uid if records else 0
    return (
        result.makespan,
        result.per_atomic_completion,
        result.total_paid,
        result.answers,
        [
            (
                r.atomic_task_id,
                r.repetition_index,
                r.price,
                r.published_at,
                r.accepted_at,
                r.completed_at,
                r.uid - base_uid,
            )
            for r in records
        ],
    )


class TestSplitReplications:
    def test_even_split(self):
        assert split_replications(6, 3) == [(0, 2), (2, 2), (4, 2)]

    def test_remainder_goes_to_leading_shards(self):
        assert split_replications(7, 3) == [(0, 3), (3, 2), (5, 2)]
        assert split_replications(5, 4) == [(0, 2), (2, 1), (3, 1), (4, 1)]

    def test_more_shards_than_replications(self):
        assert split_replications(2, 5) == [(0, 1), (1, 1)]

    def test_offsets_tile_the_ensemble(self):
        for n in (1, 4, 9, 16):
            for shards in (1, 2, 3, 5):
                spans = split_replications(n, shards)
                covered = [
                    k for offset, count in spans
                    for k in range(offset, offset + count)
                ]
                assert covered == list(range(n))

    def test_validation(self):
        with pytest.raises(ModelError):
            split_replications(-1, 2)
        with pytest.raises(ModelError):
            split_replications(4, 0)


class TestInProcessSharding:
    """``executor=None``: same process, same counters — bit-identical."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_bit_identical_to_sequential(self, engine):
        orders = make_orders()
        sequential = resolve_engine(engine).run_replications(
            make_sim(), orders, replication_seeds(3, 6), None, 0.0
        )
        sharded = sharded_run_replications(
            make_sim(), orders, replication_seeds(3, 6),
            engine=engine, shards=3,
        )
        assert len(sharded) == 6
        for seq, shd in zip(sequential, sharded):
            assert shd.makespan == seq.makespan
            assert shd.answers == seq.answers
            assert trajectory(shd) == trajectory(seq)

    def test_single_shard_is_the_sequential_path(self):
        orders = make_orders()
        sequential = resolve_engine("scalar").run_replications(
            make_sim(), orders, replication_seeds(1, 4), None, 0.0
        )
        sharded = sharded_run_replications(
            make_sim(), orders, replication_seeds(1, 4),
            engine="scalar", shards=1,
        )
        assert [r.makespan for r in sharded] == [
            r.makespan for r in sequential
        ]

    def test_fault_coordinates_are_global(self):
        # A rule pinned to replication 4 must land on the same world no
        # matter how the ensemble is split: shard 2 sees it as its
        # local k=0, but the site reports the global index.
        plan = FaultPlan(
            rules=(
                {"site": "market.replication", "replication": 4, "at": [0]},
            )
        )
        orders = make_orders()
        for shards in (1, 2, 3):
            with runtime_scope(plan.activate()):
                with pytest.raises(Exception) as exc:
                    sharded_run_replications(
                        make_sim(), orders, replication_seeds(3, 6),
                        engine="scalar", shards=shards,
                    )
            assert getattr(exc.value, "replication", None) == 4

    def test_recorders_cannot_cross_an_executor_boundary(self):
        with pytest.raises(ModelError, match="recorder"):
            sharded_run_replications(
                make_sim(), make_orders(), replication_seeds(3, 4),
                engine="scalar", shards=2, executor=SerialExecutor(),
                recorders=[None] * 4,
            )


class TestExecutorSharding:
    def test_serial_executor_merge_is_trajectory_identical(self):
        # The serial executor exercises the full wire format (pickled
        # shard calls, merged by shard index) without subprocesses.
        orders = make_orders()
        sequential = resolve_engine("agent-batch").run_replications(
            make_sim(), orders, replication_seeds(3, 5), None, 0.0
        )
        sharded = sharded_run_replications(
            make_sim(), orders, replication_seeds(3, 5),
            engine="agent-batch", shards=2, executor=SerialExecutor(),
        )
        assert [trajectory(r) for r in sharded] == [
            trajectory(r) for r in sequential
        ]

    def test_failed_shard_raises_remote_task_error(self):
        # max_sim_time saturation inside a shard comes back as a
        # RemoteTaskError carrying the shard's error document, which
        # names the *global* replication that failed.
        orders = make_orders()
        sim = AgentSimulator(
            WorkerPool(arrival_rate=5.0), seed=999, max_sim_time=1e-6
        )
        with pytest.raises(RemoteTaskError) as exc:
            sharded_run_replications(
                sim, orders, replication_seeds(3, 4),
                engine="scalar", shards=2, executor=SerialExecutor(),
            )
        document = exc.value.error_document
        assert document.code == "simulation-failed"
        assert "max_sim_time" in document.message

    @requires_process_pool
    def test_process_pool_shards_are_trajectory_identical(self):
        from repro.exec import ProcessExecutor

        orders = make_orders()
        sequential = resolve_engine("agent-batch").run_replications(
            make_sim(), orders, replication_seeds(3, 6), None, 0.0
        )
        sharded = sharded_run_replications(
            make_sim(), orders, replication_seeds(3, 6),
            engine="agent-batch", shards=3,
            executor=ProcessExecutor(workers=3, heartbeat_interval=0.02),
        )
        assert [trajectory(r) for r in sharded] == [
            trajectory(r) for r in sequential
        ]

    @requires_process_pool
    def test_shard_survives_worker_crash_retry(self):
        # A worker.task crash on the first dispatch kills the worker
        # holding shard 0; the requeued shard re-runs on a fresh seat
        # and the merged ensemble is still trajectory-identical.
        from repro.api import RunConfig
        from repro.exec import ProcessExecutor

        orders = make_orders()
        sequential = resolve_engine("scalar").run_replications(
            make_sim(), orders, replication_seeds(3, 4), None, 0.0
        )
        events = []
        outcomes = ProcessExecutor(
            workers=2, heartbeat_interval=0.02
        ).run_tasks(
            _shard_tasks(orders, shards=2),
            faults=FaultPlan(rules=({"site": "worker.task", "at": [0]},)),
            retry=RunConfig(retry={"attempts": 2}).retry,
            on_event=events.append,
        )
        assert all(o.ok for o in outcomes)
        merged = []
        for outcome in sorted(outcomes, key=lambda o: o.index):
            merged.extend(outcome.result)
        assert [trajectory(r) for r in merged] == [
            trajectory(r) for r in sequential
        ]
        assert "worker.crashed" in {e["type"] for e in events}
        assert "task.requeued" in {e["type"] for e in events}


def _shard_tasks(orders, shards):
    from repro.exec import ExecTask
    from repro.exec.worker import run_replication_shard

    seeds = replication_seeds(3, 4)
    tasks = []
    for index, (offset, count) in enumerate(
        split_replications(len(seeds), shards)
    ):
        tasks.append(
            ExecTask(
                index=index,
                kind="call",
                call=(
                    run_replication_shard,
                    (
                        make_sim(), orders,
                        seeds[offset:offset + count], offset, "scalar",
                    ),
                    {},
                ),
            )
        )
    return tasks
