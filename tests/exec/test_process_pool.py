"""Supervised worker pool: crash recovery, stragglers, degradation.

Every test here spawns real subprocesses, so the whole module is gated
behind ``REPRO_EXEC_TESTS=1`` (the ``parallel-executor`` CI job);
tier-1 certifies the same wire format serially in
``test_serial_wire.py``.
"""

from __future__ import annotations

import pytest

from repro.api import RunConfig, Session
from repro.exec import ProcessExecutor

from exec_tiny import requires_process_pool, tiny_specs

pytestmark = requires_process_pool


def _pool(**overrides):
    overrides.setdefault("workers", 2)
    overrides.setdefault("heartbeat_interval", 0.02)
    return ProcessExecutor(**overrides)


def _events(report, kind):
    return [e for e in report.events if e["type"] == kind]


class TestPoolIdentity:
    def test_pool_batch_byte_identical_to_inline_loop(self):
        inline = Session(RunConfig()).run_many(tiny_specs())
        pooled = Session(RunConfig()).run_many(tiny_specs(), executor=_pool())
        assert pooled.to_json() == inline.to_json()
        assert [o.status for o in pooled.outcomes] == ["succeeded"] * 3
        assert len(_events(pooled, "worker.spawned")) == 2

    def test_in_run_failures_cross_the_wire(self):
        # A deterministic *in-run* fault is not a worker failure: the
        # worker survives, the error document crosses the wire, and the
        # report matches the serial one byte-for-byte.
        config = RunConfig(
            faults={"rules": [{"site": "market.replication", "at": [0]}]}
        )
        serial = Session(config).run_many(tiny_specs())
        pooled = Session(config).run_many(tiny_specs(), executor=_pool())
        assert pooled.to_json() == serial.to_json()
        assert not _events(pooled, "worker.crashed")


class TestCrashRecovery:
    def test_worker_crash_is_requeued_and_respawned(self):
        # worker.task at=[0]: the worker assigned the first dispatch
        # dies with os._exit on receipt; the supervisor requeues the
        # task and respawns the seat.  The merged report is still
        # byte-identical to the serial run under the same plan (the
        # worker.* sites are unreachable in-run).
        config = RunConfig(
            faults={"rules": [{"site": "worker.task", "at": [0]}]}
        )
        serial = Session(config).run_many(tiny_specs())
        pooled = Session(config).run_many(tiny_specs(), executor=_pool())
        assert pooled.ok
        assert pooled.to_json() == serial.to_json()
        assert len(_events(pooled, "fault.worker")) == 1
        assert len(_events(pooled, "worker.crashed")) == 1
        assert len(_events(pooled, "task.requeued")) == 1
        assert len(_events(pooled, "worker.respawned")) == 1

    def test_requeue_budget_exhaustion_fails_the_task(self):
        # Every dispatch of spec 0 crashes its worker; with a retry
        # budget of 1 the task is dispatched twice, then filed as a
        # worker-crashed error document.
        config = RunConfig(
            faults={"rules": [{"site": "worker.task", "rate": 1.0}]},
            retry={"attempts": 1},
        )
        report = Session(config).run_many(
            [tiny_specs()[0]], executor=_pool(workers=1)
        )
        assert not report.ok
        [outcome] = report.outcomes
        assert outcome.status == "failed"
        assert outcome.error.code == "worker-crashed"
        assert len(_events(report, "task.requeued")) == 1

    def test_hung_worker_is_reaped_as_straggler(self):
        # worker.hang wedges the worker (heartbeats stop, main thread
        # sleeps); the supervisor's straggler deadline (TimeoutPolicy)
        # fires first because the stall window is set far longer.
        config = RunConfig(
            faults={"rules": [{"site": "worker.hang", "at": [0]}]},
            timeout=1.0,
        )
        pool = _pool(stall_timeout=30.0)
        report = Session(config).run_many(tiny_specs(), executor=pool)
        assert report.ok
        assert len(_events(report, "task.straggler")) == 1
        assert len(_events(report, "worker.straggler")) == 1
        assert len(_events(report, "task.requeued")) == 1

    def test_hung_worker_is_reaped_on_stall_without_timeout_policy(self):
        # Without a TimeoutPolicy the missing-heartbeat stall detector
        # is the backstop.
        config = RunConfig(
            faults={"rules": [{"site": "worker.hang", "at": [0]}]}
        )
        report = Session(config).run_many(
            tiny_specs(), executor=_pool(stall_timeout=0.5)
        )
        assert report.ok
        assert len(_events(report, "worker.stalled")) == 1


class TestDegradation:
    def test_pool_collapse_degrades_to_serial(self):
        # Every spawn dies immediately and the respawn budget runs out:
        # the supervisor declares the pool dead and finishes the batch
        # in-process — same documents, one pool.degraded event.
        config = RunConfig(
            faults={"rules": [{"site": "worker.spawn", "rate": 1.0}]}
        )
        serial = Session(RunConfig()).run_many(
            tiny_specs(), executor="serial"
        )
        pooled = Session(config).run_many(
            tiny_specs(), executor=_pool(max_respawns=2)
        )
        assert pooled.ok
        assert len(_events(pooled, "pool.degraded")) == 1
        # payloads are what a worker would have produced (the config
        # documents differ: one carries the worker.spawn plan)
        assert [o.result.payload for o in pooled.outcomes] == [
            o.result.payload for o in serial.outcomes
        ]


class TestCheckpointResume:
    def test_resume_through_the_pool_is_byte_identical(self, tmp_path):
        from repro.resilience.checkpoint import CheckpointJournal

        journal = tmp_path / "batch.jsonl"
        config = RunConfig()
        # seed the journal with the first spec, serially
        partial = Session(config).run_many(
            tiny_specs()[:1], checkpoint=journal
        )
        assert partial.ok
        # resume the full batch on the pool
        resumed = Session(config).run_many(
            tiny_specs(), checkpoint=journal, executor=_pool()
        )
        clean = Session(config).run_many(tiny_specs())
        assert resumed.to_json() == clean.to_json()
        assert [o.restored for o in resumed.outcomes] == [True, False, False]
        # the journal now covers all three specs; supervisor audit
        # lines are skipped by load()
        assert len(CheckpointJournal(journal).load()) == 3

    def test_crash_events_are_journaled_as_audit_lines(self, tmp_path):
        from repro.resilience.checkpoint import CheckpointJournal

        journal = tmp_path / "crash.jsonl"
        config = RunConfig(
            faults={"rules": [{"site": "worker.task", "at": [0]}]}
        )
        report = Session(config).run_many(
            tiny_specs(), checkpoint=journal, executor=_pool()
        )
        assert report.ok
        events = CheckpointJournal(journal).load_events()
        kinds = {e["type"] for e in events}
        assert "worker.crashed" in kinds
        assert "task.requeued" in kinds
        # audit lines never masquerade as completed work
        assert len(CheckpointJournal(journal).load()) == 3


class TestFailFast:
    def test_fail_fast_surfaces_the_first_error(self):
        from repro.errors import ReproError

        config = RunConfig(
            faults={"rules": [{"site": "run.start", "at": [0]}]}
        )
        with pytest.raises(ReproError):
            Session(config).run_many(
                tiny_specs(), fail_fast=True, executor=_pool()
            )
