"""CLI ``run-many``: exit-code contract, checkpoint resume, executors."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import EXECUTION_ERROR_EXIT, USER_ERROR_EXIT, main

from exec_tiny import requires_process_pool, tiny_spec_documents

_MARKET_FAULT = '{"rules": [{"site": "market.replication", "at": [0]}]}'
_RUN_START_FAULT = '{"rules": [{"site": "run.start", "at": [0]}]}'


def _spec_args():
    return [json.dumps(doc) for doc in tiny_spec_documents()]


def _run(argv):
    with pytest.raises(SystemExit) as exc:
        main(argv)
    return exc.value.code


class TestUserErrors:
    def test_unknown_experiment_exits_two(self, capsys):
        assert _run(["run-many", "warp-drive"]) == USER_ERROR_EXIT
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_executor_exits_two_with_suggestion(self, capsys):
        code = _run(
            ["run-many", _spec_args()[0], "--executor", "proces"]
        )
        assert code == USER_ERROR_EXIT
        err = capsys.readouterr().err
        assert "unknown executor" in err
        assert "did you mean 'process'?" in err

    def test_bad_inline_spec_exits_two(self, capsys):
        assert _run(["run-many", "{not json"]) == USER_ERROR_EXIT
        assert "bad inline spec document" in capsys.readouterr().err

    def test_unknown_fault_plan_exits_two(self, capsys):
        code = _run(
            ["run-many", _spec_args()[0], "--faults", "no-such-plan"]
        )
        assert code == USER_ERROR_EXIT
        assert "unknown fault plan" in capsys.readouterr().err


class TestExecutionErrors:
    def test_failing_spec_exits_three(self, capsys):
        code = _run(
            ["run-many", *_spec_args(), "--faults", _MARKET_FAULT]
        )
        assert code == EXECUTION_ERROR_EXIT
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "failed 1" in out

    def test_fail_fast_surfaces_the_error_document(self, capsys):
        code = _run(
            ["run-many", *_spec_args(), "--faults", _RUN_START_FAULT,
             "--fail-fast", "--json"]
        )
        assert code == EXECUTION_ERROR_EXIT
        payload = json.loads(capsys.readouterr().out)
        assert payload["code"] == "fault-injected"
        assert payload["site"] == "run.start"


class TestSuccess:
    def test_clean_batch_exits_zero(self, capsys):
        assert main(["run-many", *_spec_args()]) in (0, None)
        out = capsys.readouterr().out
        assert "fig2" in out and "fig3" in out and "fig4" in out
        assert "succeeded 3" in out
        assert "failed 0" in out

    def test_json_report_includes_outcomes_and_events(self, capsys):
        assert main(["run-many", *_spec_args(), "--json"]) in (0, None)
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 3
        assert payload["succeeded"] == 3
        assert payload["events"] == []
        assert [o["status"] for o in payload["outcomes"]] == ["succeeded"] * 3


class TestCheckpointResume:
    def test_partial_failure_then_resume(self, tmp_path, capsys):
        journal = tmp_path / "batch.jsonl"
        # first invocation: fig3 fails mid-batch, fig2/fig4 are journaled
        code = _run(
            ["run-many", *_spec_args(), "--faults", _MARKET_FAULT,
             "--checkpoint", str(journal)]
        )
        assert code == EXECUTION_ERROR_EXIT
        capsys.readouterr()
        completed_lines = [
            line for line in journal.read_text().splitlines()
            if '"event"' not in line
        ]
        assert len(completed_lines) == 2
        # rerun the same batch: journal entries are keyed by the
        # (spec, config) fingerprint, so the completed specs restore
        # without re-running (marked `*` in the listing) and only the
        # deterministic failure replays
        code = _run(
            ["run-many", *_spec_args(), "--faults", _MARKET_FAULT,
             "--checkpoint", str(journal)]
        )
        assert code == EXECUTION_ERROR_EXIT
        out = capsys.readouterr().out
        assert "succeeded 2" in out
        assert out.count("succeeded*") == 2
        # nothing new was journaled: the restored specs did not re-run
        completed_lines = [
            line for line in journal.read_text().splitlines()
            if '"event"' not in line
        ]
        assert len(completed_lines) == 2


@requires_process_pool
class TestKillAndRestart:
    """A SIGKILLed parent resumes from its journal byte-identically."""

    def test_killed_batch_resumes_from_journal(self, tmp_path, capsys):
        journal = tmp_path / "killed.jsonl"
        argv = [
            "run-many", *_spec_args(), "--checkpoint", str(journal),
            "--executor", "process",
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *argv],
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # kill the parent as soon as the journal shows progress (or let
        # it finish — the resume contract holds either way)
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and proc.poll() is None:
            if journal.exists() and journal.read_text().strip():
                proc.send_signal(signal.SIGKILL)
                break
            time.sleep(0.05)
        proc.wait(timeout=60.0)

        # restart: restored + fresh work merge into a clean report ...
        assert main([*argv, "--json"]) in (0, None)
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["succeeded"] == 3
        # ... identical (modulo restoration) to a never-killed batch
        clean_journal = tmp_path / "clean.jsonl"
        assert main(
            ["run-many", *_spec_args(), "--checkpoint", str(clean_journal),
             "--json"]
        ) in (0, None)
        clean = json.loads(capsys.readouterr().out)
        assert [o["result"] for o in resumed["outcomes"]] == [
            o["result"] for o in clean["outcomes"]
        ]
