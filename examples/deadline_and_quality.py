"""Quality targets, deadlines, and the budget-latency frontier.

Three requester questions the core paper leaves to the reader, answered
with the library's extension modules:

1. *"Each verdict must be right with probability >= 0.97 — how many
   votes does that take?"*  → quality-aware repetition planning.
2. *"What does the budget-latency trade-off look like, and where do
   diminishing returns start?"* → the tuned frontier and its knee.
3. *"I need everything done in 4 time units with 90% confidence —
   what is the cheapest way?"* → the deadline-constrained dual
   (the related-work [29] problem).

Run:  python examples/deadline_and_quality.py
"""

from __future__ import annotations

import functools

from repro import HTuningProblem, TaskSpec
from repro.core import (
    min_cost_for_deadline,
    plan_repetitions,
    repetitions_for_quality,
)
from repro.experiments import budget_latency_frontier, format_table
from repro.market import LinearPricing, TaskType

# --- 1. quality → repetitions ----------------------------------------
easy = TaskType("easy-vote", processing_rate=2.0, accuracy=0.94)
hard = TaskType("hard-vote", processing_rate=1.0, accuracy=0.72)
TARGET_QUALITY = 0.97

plan = plan_repetitions([easy, hard], target=TARGET_QUALITY)
print(f"Quality target {TARGET_QUALITY}:")
for name, reps in plan.total_votes_per_task.items():
    print(f"  {name}: {reps} votes per question")

# --- build the H-Tuning instance the plan implies ---------------------
pricing = LinearPricing(slope=1.0, intercept=1.0)


def build_problem(budget: int) -> HTuningProblem:
    tasks = [
        TaskSpec(i, plan.for_type("easy-vote"), pricing,
                 easy.processing_rate, type_name=easy.name)
        for i in range(8)
    ] + [
        TaskSpec(8 + i, plan.for_type("hard-vote"), pricing,
                 hard.processing_rate, type_name=hard.name)
        for i in range(4)
    ]
    return HTuningProblem(tasks, budget)


# --- 2. the tuned budget-latency frontier ------------------------------
budgets = [b for b in (100, 200, 400, 800, 1600, 3200)]
frontier = budget_latency_frontier(build_problem, budgets=budgets)
knee = frontier.knee()
print(
    "\n"
    + format_table(
        ["budget", "tuned E[latency]", ""],
        [
            (p.budget, p.latency, "<-- knee" if p is knee else "")
            for p in frontier.points
        ],
        title="Budget-latency frontier (strategy per point: "
        f"{frontier.points[0].strategy})",
    )
)
print(f"Diminishing returns set in around budget {knee.budget}.")

# --- 3. cheapest allocation for a hard deadline -----------------------
# The hard group needs ~15 sequential votes at λ_p = 1, so its
# processing phase alone takes ~15 time units in expectation; a
# feasible deadline must clear that.
DEADLINE, CONFIDENCE = 30.0, 0.9
tasks = build_problem(10_000).tasks  # the task list; budget is the output
result = min_cost_for_deadline(
    tasks, deadline=DEADLINE, confidence=CONFIDENCE, max_price=300
)
print(
    f"\nDeadline {DEADLINE} at {CONFIDENCE:.0%} confidence: "
    f"min cost {result.cost} units "
    f"(achieved P = {result.achieved_probability:.3f})"
)
for group_key, price in sorted(result.group_prices.items(), key=str):
    print(f"  group {group_key[0]} x{group_key[1]} reps: {price} units/rep")
