"""Crowd-powered sorting with a tuned budget (Motivation Example 1).

A crowd-powered database receives ``SELECT * FROM photos ORDER BY
attractiveness`` — a query no SQL engine can answer.  The planner
decomposes it into pairwise comparison votes (the "next votes" plan),
the tuner prices each vote within a $2.00 budget, the market executes,
and majority aggregation produces the ranking.

Run:  python examples/crowd_sort_pipeline.py
"""

from __future__ import annotations

from repro import Tuner
from repro.crowddb import CrowdQueryEngine, CrowdSort
from repro.market import CrowdPlatform, LinearPricing, MarketModel, TaskType

# --- the data the crowd will sort -----------------------------------
# Latent "attractiveness" keys are what a human can judge but the
# database cannot compute.
photos = [f"photo_{c}" for c in "abcdefgh"]
latent_keys = [0.31, 0.93, 0.17, 0.55, 0.48, 0.71, 0.08, 0.62]

# --- the market ------------------------------------------------------
comparison_vote = TaskType(
    name="pairwise-vote",
    processing_rate=1.0,   # ~1 comparison per time unit once accepted
    accuracy=0.93,         # workers err on ~7% of votes
)
market_curve = LinearPricing(slope=0.8, intercept=0.5)
platform = CrowdPlatform(MarketModel(market_curve), seed=42)

# --- plan, tune, execute ---------------------------------------------
engine = CrowdQueryEngine(
    platform,
    pricing={"pairwise-vote": market_curve},
    tuner=Tuner(seed=0),
)

query = CrowdSort(
    items=photos,
    keys=latent_keys,
    task_type=comparison_vote,
    repetitions=5,          # 5 votes per pair, majority wins
    strategy="next_votes",  # adjacent pairs only; close pairs get extra votes
    hard_pair_extra=2,
)

BUDGET = 200  # cents
outcome = engine.execute(query, budget=BUDGET)

print("Plan:")
for i, planned in enumerate(query.plan()):
    q = planned.question
    prices = outcome.allocation[i]
    print(
        f"  compare {q.left} vs {q.right}: {planned.repetitions} votes, "
        f"prices {list(prices)}"
    )

print(f"\nTuning strategy: {outcome.strategy}")
print(f"Total paid:      {outcome.total_paid} of {BUDGET} cents")
print(f"Job latency:     {outcome.latency:.2f} time units")
print(f"\nCrowd ranking:   {outcome.result}")
print(f"True ranking:    {query.ground_truth()}")

correct = outcome.result == query.ground_truth()
print(f"Exact match: {correct}")
