"""Tuning on a fluctuating market with live re-estimation.

The paper models the crowd with constant-rate arrivals but notes real
platforms fluctuate daily (§3).  This demo runs a multi-round job on a
market whose worker arrival rate follows a sinusoidal "daily" cycle:

1. the non-stationary stream is visualized via arrival counts per
   phase of the cycle;
2. an :class:`~repro.core.adaptive.AdaptiveTuner` runs six rounds,
   re-estimating the acceptance rate from each round's trace;
3. the belief trajectory shows the tuner chasing the cycle.

Run:  python examples/nonstationary_market.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AdaptiveTuner
from repro.market import (
    AggregateSimulator,
    LinearPricing,
    MarketModel,
    SinusoidalRate,
    TaskType,
    sample_arrival_times,
)

# --- 1. the fluctuating market ----------------------------------------
PERIOD = 24.0  # a "day"
profile = SinusoidalRate(base=5.0, amplitude=0.6, period=PERIOD)

rng = np.random.default_rng(0)
arrivals = np.array(
    sample_arrival_times(profile, horizon=PERIOD * 50, rng=rng)
)
print("Worker arrivals per quarter of the daily cycle (50 days):")
for quarter in range(4):
    lo, hi = quarter * PERIOD / 4, (quarter + 1) * PERIOD / 4
    phase = arrivals % PERIOD
    count = int(np.sum((phase >= lo) & (phase < hi)))
    bar = "#" * (count // 50)
    print(f"  [{lo:5.1f}, {hi:5.1f}): {count:5d} {bar}")

# --- 2. adaptive tuning across the cycle -------------------------------
# The aggregate market's effective acceptance rate tracks the cycle:
# round r runs during hour r*4, where the multiplier is profile.rate/base.
vote = TaskType("vote", processing_rate=2.0)
base_curve = LinearPricing(slope=0.8, intercept=0.4)
prior = base_curve

tuner = AdaptiveTuner(vote, prior, total_budget=1200, decay=0.3, seed=1)
print("\nAdaptive rounds across the daily cycle:")
ROUNDS = 6
for round_index in range(ROUNDS):
    hour = round_index * PERIOD / ROUNDS
    multiplier = profile.rate(hour) / profile.base
    curve_now = LinearPricing(
        slope=base_curve.slope * multiplier,
        intercept=base_curve.intercept * multiplier,
    )
    sim = AggregateSimulator(MarketModel(curve_now), seed=100 + round_index)
    outcome = tuner.run_round(
        sim, n_tasks=10, repetitions=2, rounds_left=ROUNDS - round_index
    )
    believed = tuner.belief.current_model()
    # Compare belief and truth at the round's typical price.
    price = outcome.allocation[0][0]
    print(
        f"  hour {hour:5.1f}: market x{multiplier:.2f}, "
        f"round latency {outcome.latency:6.2f}, "
        f"believed rate@{price} = {believed(price):6.2f} "
        f"(true {curve_now(price):6.2f})"
    )

print(
    f"\nTotal spent {tuner.total_spent} of 1200 units; "
    f"summed round latency {tuner.total_latency:.2f}"
)
