"""Quickstart: tune a crowdsourcing budget and measure the speedup.

The minimal end-to-end loop of the paper:

1. describe the tasks (type, repetitions) and the market's price
   response λ_o(c);
2. let the Tuner allocate a fixed budget (EA/RA/HA by scenario);
3. run the job on the simulated market and compare against the naive
   equal-payment allocation.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import HTuningProblem, TaskSpec, Tuner
from repro.core import simulate_job_latency, uniform_price_heuristic
from repro.market import LinearPricing

# The market: acceptance rate grows linearly with the offered price
# (the paper's Linearity Hypothesis), λ_o(c) = 1·c + 1.
pricing = LinearPricing(slope=1.0, intercept=1.0)

# The job: 30 easy voting tasks needing 2 answers each, plus 10 harder
# ones needing 5 answers each (same difficulty type → Scenario II).
tasks = [
    TaskSpec(task_id=i, repetitions=2, pricing=pricing, processing_rate=2.0)
    for i in range(30)
] + [
    TaskSpec(task_id=30 + i, repetitions=5, pricing=pricing, processing_rate=2.0)
    for i in range(10)
]

BUDGET = 600  # payment units (cents)
problem = HTuningProblem(tasks, budget=BUDGET)
print(f"Scenario detected: {problem.scenario().value}")

# Tuned allocation (Algorithm 2 for Scenario II).
tuner = Tuner(seed=0)
tuned = tuner.tune(problem)
print(f"Strategy used:     {tuner.resolve_strategy(problem)}")
for group in problem.groups():
    price = tuned.uniform_group_price(group)
    print(
        f"  group reps={group.repetitions}: {group.size} tasks "
        f"at {price} units per repetition"
    )

# Naive baseline: the same price for every repetition.
naive = uniform_price_heuristic(problem)

# Expected job latency (Monte Carlo over the paper's stochastic model).
tuned_latency = simulate_job_latency(problem, tuned, n_samples=20_000, rng=1)
naive_latency = simulate_job_latency(problem, naive, n_samples=20_000, rng=1)

print(f"\nExpected job latency, tuned: {tuned_latency:.3f}")
print(f"Expected job latency, naive: {naive_latency:.3f}")
print(f"Speedup: {naive_latency / tuned_latency:.2f}x")

assert tuned_latency <= naive_latency * 1.02, "tuning should not be slower"
