"""Inferring a live market's parameters with probe tasks (paper §3.3).

A requester facing an unknown crowd market cannot tune blind: the
λ_o(c) curve must be estimated first.  This demo

1. probes the (simulated) market at four price points with both the
   fixed-period and random-period estimators,
2. fits the Linearity Hypothesis through the estimates,
3. estimates the processing rate λ_p,
4. hands the calibrated model to the tuner and compares the resulting
   allocation against an oracle that knows the true curve.

Run:  python examples/parameter_inference_demo.py
"""

from __future__ import annotations

from repro import HTuningProblem, TaskSpec, Tuner
from repro.core import simulate_job_latency
from repro.inference import RateProbe, fit_linearity
from repro.market import LinearPricing, MarketModel, TaskType

# Ground truth the requester does NOT know:
TRUE_CURVE = LinearPricing(slope=1.6, intercept=0.8)
TRUE_PROCESSING_RATE = 2.5

market = MarketModel(TRUE_CURVE)
vote = TaskType("vote", processing_rate=TRUE_PROCESSING_RATE)

# --- 1. probe --------------------------------------------------------
probe = RateProbe(market, vote, slots=6, seed=7)
price_points = [2, 4, 6, 8]
print("Probing the market:")
estimates = []
for price in price_points:
    fixed = probe.fixed_period(price=price, period=120.0)
    random_ = probe.random_period(price=price, n_events=400)
    estimates.append(random_)
    print(
        f"  price {price}: fixed-period λ̂={fixed.rate:.2f} "
        f"[{fixed.ci_low:.2f}, {fixed.ci_high:.2f}], "
        f"random-period λ̂={random_.rate:.2f} "
        f"(true {TRUE_CURVE(price):.2f})"
    )

# --- 2. fit the Linearity Hypothesis ---------------------------------
fit = fit_linearity([float(p) for p in price_points], estimates)
print(
    f"\nLinearity fit: λ_o(c) = {fit.slope:.2f}·c + {fit.intercept:.2f} "
    f"(R² = {fit.r_squared:.3f}, hypothesis supported: "
    f"{fit.supports_hypothesis})"
)
calibrated = fit.to_pricing_model()

# --- 3. processing rate ----------------------------------------------
rate_p, overall, onhold = probe.processing_rate(price=4, n_events=800)
print(
    f"Processing rate λ̂_p = {rate_p:.2f} (true {TRUE_PROCESSING_RATE}); "
    f"probed overall rate {overall.rate:.2f}, on-hold rate {onhold.rate:.2f}"
)

# --- 4. tune with the calibrated model --------------------------------
def build_problem(pricing):
    tasks = [
        TaskSpec(i, repetitions=3, pricing=pricing,
                 processing_rate=rate_p if pricing is calibrated
                 else TRUE_PROCESSING_RATE)
        for i in range(25)
    ]
    return HTuningProblem(tasks, budget=450)


calibrated_alloc = Tuner(seed=0).tune(build_problem(calibrated))
oracle_alloc = Tuner(seed=0).tune(build_problem(TRUE_CURVE))

# Score both against the TRUE market.
truth_problem = build_problem(TRUE_CURVE)
lat_calibrated = simulate_job_latency(
    truth_problem, calibrated_alloc, n_samples=30_000, rng=1
)
lat_oracle = simulate_job_latency(
    truth_problem, oracle_alloc, n_samples=30_000, rng=1
)
print(
    f"\nExpected latency tuned with calibrated model: {lat_calibrated:.3f}"
)
print(f"Expected latency tuned with the true model:   {lat_oracle:.3f}")
print(
    f"Calibration overhead: "
    f"{(lat_calibrated / lat_oracle - 1) * 100:+.1f}%"
)
