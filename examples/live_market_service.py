"""The live crowd-market service, end to end, in one process.

Starts a :class:`repro.serve.ReproService` on a background thread
(backed by a result store in a temp dir), then plays both sides of the
ROADMAP's "serving heavy traffic" story against it over real HTTP:

* **batch side** — submit a fig2-sized budget sweep (``POST /runs``),
  poll its status, fetch the result document, and resubmit to show the
  store-hit path (the second submission is served, not recomputed);
* **market side** — stream allocate requests (``POST /market/allocate``)
  priced by the paper's DP kernels against one live budget ledger
  until the ledger rejects a batch with a 409, then print the final
  ledger state.

Run:  python examples/live_market_service.py
"""

from __future__ import annotations

import asyncio
import tempfile
import time

from repro.serve import ReproService, http_request, start_in_thread


async def play(host: str, port: int, spec: dict) -> None:
    req = lambda *a, **kw: http_request(host, port, *a, **kw)  # noqa: E731

    # --- batch side: submit, poll, fetch, resubmit -------------------
    status, doc = await req("POST", "/runs", {"spec": spec})
    run_id = doc["run_id"]
    print(f"submitted   {run_id}  ({status}: {doc['status']})")

    while True:
        status, doc = await req("GET", f"/runs/{run_id}")
        if doc["status"] not in ("queued", "running"):
            break
        await asyncio.sleep(0.05)
    print(f"settled     {run_id}  ({doc['status']})")

    status, result = await req("GET", f"/runs/{run_id}/result")
    budgets = result["payload"]["budgets"]
    print(f"result      {status}: budgets {budgets}")

    t0 = time.perf_counter()
    status, doc = await req("POST", "/runs", {"spec": spec})
    warm_ms = (time.perf_counter() - t0) * 1000.0
    print(
        f"resubmitted {doc['run_id']}  ({status}: {doc['status']}, "
        f"{warm_ms:.1f} ms — idempotent, not recomputed)"
    )

    # --- market side: allocate until the ledger says no --------------
    print("\nmarket:")
    batch = 0
    while True:
        batch += 1
        status, doc = await req(
            "POST",
            "/market/allocate",
            {"scenario": "repe", "n_tasks": 8, "budget": 800},
        )
        if status == 409:
            print(f"  batch {batch:2d}: REJECTED ({doc['code']}: {doc['message']})")
            break
        print(
            f"  batch {batch:2d}: accepted {doc['allocation_id']} "
            f"cost {doc['cost']}  remaining {doc['remaining_budget']}"
        )

    _, state = await req("GET", "/market/state")
    ledger = state["ledger"]
    print(
        f"\nledger: spent {ledger['spent']}/{ledger['budget']}  "
        f"accepted {ledger['accepted']}  rejected {ledger['rejected']}  "
        f"digest {state['trajectory_digest']}"
    )

    _, health = await req("GET", "/health")
    tally = health["tally"]
    print(
        f"service: {tally['requests']} requests, "
        f"{tally['computed']} computed, {tally['store_hits']} store hits"
    )


async def replay_after_restart(host: str, port: int, spec: dict) -> None:
    """A fresh service on the same store serves the run without compute."""
    t0 = time.perf_counter()
    status, doc = await http_request(host, port, "POST", "/runs", {"spec": spec})
    warm_ms = (time.perf_counter() - t0) * 1000.0
    print(
        f"\nafter restart: {doc['run_id']}  ({status}: {doc['status']}, "
        f"served={doc['served']}, {warm_ms:.1f} ms — a store hit, no compute)"
    )


def main() -> None:
    spec = {
        "experiment": "budget-sweep",
        "params": {
            "family": "repe",
            "case": "a",
            "n_tasks": 12,
            "budgets": [600, 900, 1200],
            "strategies": ["ra", "ha"],
            "scoring": "numeric",
        },
    }
    with tempfile.TemporaryDirectory() as store_dir:
        service = ReproService(store=store_dir, market_budget=3_000)
        with start_in_thread(service) as handle:
            print(f"service up at {handle.base_url}  (store: {store_dir})\n")
            asyncio.run(play(handle.host, handle.port, spec))
        # The store outlives the process: a brand-new service instance
        # answers the same submission from disk (the restart story).
        restarted = ReproService(store=store_dir)
        with start_in_thread(restarted) as handle:
            asyncio.run(replay_after_restart(handle.host, handle.port, spec))


if __name__ == "__main__":
    main()
