"""Reproducing the paper's AMT deployment on the calibrated simulator.

The paper's §5.2 experiment: dot-counting image-filter tasks of three
difficulties (4/6/8 internal votes) with repetition requirements
10/15/20, budgets $6–$10.  The market here is calibrated to the
paper's measured rates (Fig. 4), so latencies come out in real minutes.

For each budget the demo tunes with Algorithm 3 (OPT), compares with
the equal-payment heuristic (HEU), and prints the per-type and overall
latencies — the series behind Fig. 5(c).

Run:  python examples/amt_budget_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro import HTuningProblem, TaskSpec
from repro.core import STRATEGIES, simulate_job_latency
from repro.experiments import format_table
from repro.market import LinearPricing
from repro.workloads import amt_pricing_model, amt_task_type

REPETITIONS = (10, 15, 20)
VOTE_COUNTS = (4, 6, 8)
BUDGETS_CENTS = (600, 700, 800, 900, 1000)

base_curve = amt_pricing_model()
types = [amt_task_type(votes=v) for v in VOTE_COUNTS]
# Per-type λ_o(c): the base curve scaled by the type's attractiveness
# (harder tasks are taken up more slowly; Fig. 5(a)).
curves = [
    LinearPricing(slope=base_curve.slope * t.attractiveness, intercept=0.0)
    if base_curve.intercept == 0.0
    else LinearPricing(
        slope=base_curve.slope * t.attractiveness,
        intercept=base_curve.intercept * t.attractiveness,
    )
    for t in types
]


def build_problem(budget: int) -> HTuningProblem:
    specs = [
        TaskSpec(
            task_id=i,
            repetitions=reps,
            pricing=curve,
            processing_rate=ttype.processing_rate,
            type_name=ttype.name,
        )
        for i, (ttype, reps, curve) in enumerate(
            zip(types, REPETITIONS, curves)
        )
    ]
    return HTuningProblem(specs, budget)


rng = np.random.default_rng(0)
rows = []
for budget in BUDGETS_CENTS:
    problem = build_problem(budget)
    row = [f"${budget / 100:.0f}"]
    for name in ("ha", "uniform"):
        allocation = STRATEGIES[name](problem, rng)
        latency = simulate_job_latency(
            problem, allocation, n_samples=3000, rng=rng
        )
        row.append(latency / 60.0)  # minutes
    rows.append(tuple(row))

print(
    format_table(
        ["budget", "OPT latency/min", "HEU latency/min"],
        rows,
        title="AMT workload (Fig. 5(c) regime): tuned vs equal-payment",
    )
)

opt_col = [r[1] for r in rows]
heu_col = [r[2] for r in rows]
wins = sum(1 for o, h in zip(opt_col, heu_col) if o <= h)
print(f"\nOPT wins at {wins}/{len(rows)} budgets")
print(
    "Per-budget improvement:",
    ", ".join(f"{(h / o - 1) * 100:.0f}%" for o, h in zip(opt_col, heu_col)),
)
