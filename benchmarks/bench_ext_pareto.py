"""Extension E3 — the budget–latency frontier and its knee.

Sweeps the Fig. 2 homogeneity workload over a wide budget range,
tunes each point, and reports the frontier a requester would consult
before committing money, plus the diminishing-returns knee and the
inverse query ("cheapest budget for latency <= L").
"""

from __future__ import annotations

import functools

from repro.experiments import (
    budget_latency_frontier,
    format_table,
    min_budget_for_latency,
)
from repro.workloads import homogeneity_workload


FACTORY = functools.partial(homogeneity_workload, n_tasks=40, repetitions=3)
BUDGETS = (150, 300, 600, 1200, 2400, 4800, 9600)


def test_budget_latency_frontier(benchmark, report):
    frontier = benchmark.pedantic(
        lambda: budget_latency_frontier(FACTORY, budgets=BUDGETS),
        rounds=1,
        iterations=1,
    )
    knee = frontier.knee()
    rows = [
        (p.budget, p.latency, "<-- knee" if p is knee else "")
        for p in frontier.points
    ]
    report(
        "ext_pareto_frontier",
        format_table(
            ["budget", "tuned E[latency]", ""],
            rows,
            title="Extension E3 — budget-latency frontier "
            "(40 tasks x 3 reps, case a)",
        ),
    )
    assert frontier.is_monotone()
    assert knee.budget < BUDGETS[-1]


def test_inverse_query(report):
    frontier = budget_latency_frontier(FACTORY, budgets=BUDGETS)
    target = frontier.latencies[3]  # achievable at BUDGETS[3]
    budget = min_budget_for_latency(
        FACTORY, target_latency=target, budget_lo=BUDGETS[0],
        budget_hi=BUDGETS[-1],
    )
    report(
        "ext_pareto_inverse",
        format_table(
            ["quantity", "value"],
            [
                ("target latency", target),
                ("frontier budget achieving it", BUDGETS[3]),
                ("binary-search minimal budget", budget),
            ],
            title="Extension E3 — cheapest budget for a latency target",
        ),
    )
    assert budget is not None
    assert budget <= BUDGETS[3]
