"""Extension E4 — posted-price tuning vs the retainer model ([26–28]).

The paper's §2 argues the two recruitment regimes serve different
operating points: retainers buy near-zero phase-1 latency at a
standing wage, posted prices buy throughput per dollar.  This bench
runs the *same* batch job (30 tasks × 2 reps) both ways and reports
latency and total cost, certifying the claimed trade-off:

* retainer latency << posted-price latency (instantaneity);
* retainer cost >> posted-price cost at equal workload (the pool is
  paid to idle);
* shrinking the retainer pool narrows the cost gap but erodes the
  latency advantage (the knob between the two regimes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import HTuningProblem, TaskSpec, Tuner
from repro.experiments import format_table
from repro.market import (
    AggregateSimulator,
    AtomicTaskOrder,
    LinearPricing,
    MarketModel,
    RetainerCostModel,
    RetainerSimulator,
    TaskType,
)

# AMT-realistic time scales (seconds): posted-price acceptance takes
# minutes (Fig. 4's rates), processing ~90 s, retained workers react in
# ~2 s but are paid a standing wage while they wait.
VOTE = TaskType("vote", processing_rate=1.0 / 90.0)
CURVE = LinearPricing(0.001, 0.0005)
N_TASKS, REPS = 30, 2
BUDGET = 400
WAGE = 0.05          # units per worker-second on retainer
REACTION_MEAN = 2.0  # seconds from alert to start
TRIALS = 20


def _posted_price_run(seed: int) -> tuple[float, float]:
    tasks = [
        TaskSpec(i, REPS, CURVE, VOTE.processing_rate, type_name=VOTE.name)
        for i in range(N_TASKS)
    ]
    problem = HTuningProblem(tasks, BUDGET)
    allocation = Tuner(seed=seed).tune(problem)
    orders = [
        AtomicTaskOrder(
            task_type=VOTE,
            prices=tuple(allocation[t.task_id]),
            atomic_task_id=t.task_id,
        )
        for t in problem.tasks
    ]
    sim = AggregateSimulator(MarketModel(CURVE), seed=seed)
    job = sim.run_job(orders)
    return job.latency, float(job.total_paid)


def _retainer_run(pool_size: int, seed: int) -> tuple[float, float]:
    orders = [
        AtomicTaskOrder(
            task_type=VOTE, prices=(1,) * REPS, atomic_task_id=i
        )
        for i in range(N_TASKS)
    ]
    sim = RetainerSimulator(
        pool_size=pool_size, reaction_mean=REACTION_MEAN, seed=seed
    )
    job = sim.run_job(orders)
    cost_model = RetainerCostModel(wage_per_time=WAGE, payment_per_answer=1)
    cost = cost_model.total_cost(pool_size, job.latency, N_TASKS * REPS)
    return job.latency, cost


def test_retainer_vs_posted_price(benchmark, report):
    posted = [_posted_price_run(s) for s in range(TRIALS)]
    big_pool = [_retainer_run(N_TASKS, s) for s in range(TRIALS)]
    small_pool = [_retainer_run(max(N_TASKS // 6, 1), s) for s in range(TRIALS)]

    def mean(pairs, idx):
        return float(np.mean([p[idx] for p in pairs]))

    rows = [
        ("posted-price (H-Tuning)", mean(posted, 0), mean(posted, 1)),
        (f"retainer pool R={N_TASKS}", mean(big_pool, 0), mean(big_pool, 1)),
        (
            f"retainer pool R={max(N_TASKS // 6, 1)}",
            mean(small_pool, 0),
            mean(small_pool, 1),
        ),
    ]
    report(
        "ext_retainer_comparison",
        format_table(
            ["recruitment", "mean latency", "mean cost"],
            rows,
            title="Extension E4 — posted-price tuning vs retainer pools "
            f"(30 tasks x 2 reps, wage {WAGE}/time)",
        ),
    )
    # The paper's trade-off shape:
    posted_latency, posted_cost = rows[0][1], rows[0][2]
    big_latency, big_cost = rows[1][1], rows[1][2]
    small_latency, small_cost = rows[2][1], rows[2][2]
    assert big_latency < posted_latency * 0.7, "retainer must be faster"
    assert big_cost > posted_cost, "instantaneity must cost more"
    assert small_cost < big_cost, "smaller pools are cheaper"
    assert small_latency > big_latency, "...but slower"

    benchmark(lambda: _retainer_run(N_TASKS, 0))
