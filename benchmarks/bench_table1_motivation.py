"""Table 1 + Motivation Examples 1/2 (paper §1, Fig. 1).

Regenerates the expected latencies of the even vs load-sensitive
allocations for both motivating examples, using Table 1's rate table.

Paper's reported numbers: Example 1 — 2.93s (even) vs 2.25s
(load-sensitive); Example 2 — 3.5s vs 2.7s.  The paper's closed-form
expression for E[max] is garbled (see EXPERIMENTS.md), so absolute
values differ; the *shape* — load-sensitive wins by ~15–25% — is what
this bench certifies, and our case-2 value (1.125 = the paper's 2.25
up to a factor-2 rate convention) is exact under Table 1's rates.
"""

from __future__ import annotations

from repro.experiments import (
    format_kv,
    motivation_example_1,
    motivation_example_2,
)


def test_motivation_example_1(benchmark, report):
    result = benchmark(motivation_example_1)
    assert result.load_sensitive_wins
    report(
        "table1_motivation_ex1",
        format_kv(
            {
                "even allocation ($3/$3) expected latency": result.even_latency,
                "load-sensitive ($2/$4) expected latency": result.load_sensitive_latency,
                "improvement": f"{result.improvement:.1%}",
                "paper reported (even / load-sensitive)": "2.93 / 2.25",
                "winner matches paper": result.load_sensitive_wins,
            },
            title="Motivation Example 1 (sort job, Table 1 rates)",
        ),
    )


def test_motivation_example_2(benchmark, report):
    result = benchmark(motivation_example_2)
    assert result.load_sensitive_wins
    report(
        "table1_motivation_ex2",
        format_kv(
            {
                "even allocation ($3/$3) expected latency": result.even_latency,
                "difficulty-balanced ($4/$2) expected latency": result.load_sensitive_latency,
                "improvement": f"{result.improvement:.1%}",
                "paper reported (even / balanced)": "3.5 / 2.7",
                "winner matches paper": result.load_sensitive_wins,
            },
            title="Motivation Example 2 (heterogeneous job, Table 1 rates)",
        ),
    )
