"""Ablation A5 — sequential vs parallel repetition semantics.

§2 notes crowdsourcing tasks "can be processed both parallel ... and
sequentially (one task calls for multiple answering repetitions, which
are submitted one after another)"; the paper's model and algorithms
assume the sequential semantics.  This ablation quantifies what the
choice costs: the same tuned allocation executed under both semantics,
over the Fig. 2 repetition workload.

Expected shape: parallel repetitions (AMT multi-assignment HITs) are
substantially faster at identical cost — the sequential model is the
*conservative* bound — and the gap widens with the repetition count.
"""

from __future__ import annotations

import pytest

from repro import HTuningProblem, TaskSpec, Tuner
from repro.core import expected_job_latency
from repro.experiments import format_table
from repro.market import LinearPricing

PRICING = LinearPricing(1.0, 1.0)


def _problem(reps: int) -> HTuningProblem:
    tasks = [TaskSpec(i, reps, PRICING, 2.0) for i in range(20)]
    return HTuningProblem(tasks, budget=20 * reps * 6)


def test_sequential_vs_parallel_semantics(benchmark, report):
    rows = []
    gaps = []
    for reps in (1, 2, 4, 8):
        problem = _problem(reps)
        allocation = Tuner(seed=0).tune(problem)
        seq = expected_job_latency(problem, allocation)
        par = expected_job_latency(
            problem, allocation, repetition_mode="parallel"
        )
        gaps.append(seq / par)
        rows.append((reps, seq, par, f"{seq / par:.2f}x"))
    report(
        "ablation_repetition_modes",
        format_table(
            ["repetitions", "sequential E[latency]", "parallel E[latency]",
             "speedup"],
            rows,
            title="Ablation A5 — the paper's sequential semantics vs "
            "parallel multi-assignment HITs (same tuned allocation)",
        ),
    )
    # Single repetition: semantics coincide.
    assert gaps[0] == pytest.approx(1.0, rel=1e-6)
    # Parallel never slower; the gap grows with the repetition count.
    assert all(g >= 1.0 - 1e-9 for g in gaps)
    assert gaps[-1] > gaps[1] > gaps[0]

    problem = _problem(4)
    allocation = Tuner(seed=0).tune(problem)
    benchmark(
        lambda: expected_job_latency(
            problem, allocation, repetition_mode="parallel"
        )
    )
