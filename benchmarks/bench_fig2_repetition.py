"""Fig. 2 (g)-(l) — Scenario II (Repetition) budget sweeps.

50 tasks × 3 reps + 50 tasks × 5 reps, λ_p = 2.0; RA (opt) vs
task-even (te) vs rep-even (re).  Expected shape: opt at or below both
baselines at every budget under each of the six λ_o(c) curves.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig2_experiment, format_series
from repro.workloads import PAPER_BUDGETS, repetition_workload

CASES = "abcdef"


@pytest.mark.parametrize("case", CASES)
def test_fig2_repetition_case(case, benchmark, report):
    result = benchmark.pedantic(
        lambda: fig2_experiment(
            "repe",
            case=case,
            budgets=PAPER_BUDGETS,
            n_tasks=100,
            scoring="mc",
            n_samples=1200,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    report(
        f"fig2_repe_{case}",
        format_series(
            "budget",
            result.budgets,
            result.series,
            title=f"Fig 2 repe({case}) — latency by budget "
            f"(opt=ra vs te/re, MC scoring)",
        ),
    )
    # Shape assertions.  For the nonlinear-robustness cases (e)/(f)
    # the group-sum surrogate's gap to the true E[max] widens (most
    # visibly under the concave log curve), so RA tracks rather than
    # strictly dominates rep-even there — see EXPERIMENTS.md.
    slack = 0.04 * max(result.series["te"])
    re_slack = (0.07 if case in "ef" else 0.04) * max(result.series["re"])
    assert result.dominates("ra", "te", slack=slack)
    assert result.dominates("ra", "re", slack=re_slack)


def test_ra_kernel_speed(benchmark):
    """RA's DP is O(nB'): time one full allocation at B = 5000."""
    from repro.core import repetition_algorithm

    problem = repetition_workload(5000, case="a")
    benchmark(lambda: repetition_algorithm(problem))
