"""Fig. 5(c) — OPT vs the equal-payment heuristic on the AMT workload.

Three task types with repetition requirements 10/15/20 (difficulties
4/6/8 votes), total budgets $6–$10.  OPT = Algorithm 3; HEU = the same
payment per repetition for every type.  Expected shape: OPT's overall
job latency (max across the three types) is below HEU's at every
budget, and OPT "successfully avoids yielding the longest latency
among the three tasks" — its worst type is never as slow as HEU's
worst type.
"""

from __future__ import annotations

from repro.experiments import fig5c_experiment, format_table


def test_fig5c_opt_vs_heuristic(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig5c_experiment(
            budgets=(600, 700, 800, 900, 1000), n_samples=1000, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for bi, budget in enumerate(result.budgets):
        rows.append(
            (
                f"${budget / 100:.0f}",
                *(
                    result.series[("opt", t)][bi] / 60.0
                    for t in range(3)
                ),
                *(
                    result.series[("heu", t)][bi] / 60.0
                    for t in range(3)
                ),
            )
        )
    report(
        "fig5c_opt_vs_heuristic",
        format_table(
            [
                "budget",
                "OPT(t1)/min",
                "OPT(t2)/min",
                "OPT(t3)/min",
                "HEU(t1)/min",
                "HEU(t2)/min",
                "HEU(t3)/min",
            ],
            rows,
            title="Fig 5(c) — per-type latency, OPT (HA) vs equal-payment HEU",
        ),
    )
    assert result.opt_beats_heuristic
    # OPT avoids the longest-latency blowup at every budget.
    for bi in range(len(result.budgets)):
        opt_worst = max(result.series[("opt", t)][bi] for t in range(3))
        heu_worst = max(result.series[("heu", t)][bi] for t in range(3))
        assert opt_worst <= heu_worst * 1.02
