"""Fig. 4 — reward vs latency, and the inferred rate curve.

One 10-repetition dot-filter task per reward in {$0.05, $0.08, $0.10,
$0.12} on the calibrated market; the per-order acceptance latencies
shrink as the reward grows, and the rates inferred from the traces
support the Linearity Hypothesis.

Paper's inferred rates: λ = 0.0038 / 0.0062 / 0.0121 / 0.0131 s⁻¹.
Our market is *calibrated to those numbers*, so the recovered rates
must land near them (up to the one-trace estimation noise the paper's
own procedure has).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig4_experiment, format_kv, format_table
from repro.inference import paper_amt_rates


def test_fig4_reward_vs_latency(benchmark, report):
    # Average the inference over several independent traces to tame
    # single-trace noise (the paper reports one trace; same procedure).
    results = [
        benchmark.pedantic(
            lambda s=seed: fig4_experiment(seed=s), rounds=1, iterations=1
        )
        if seed == 0
        else fig4_experiment(seed=seed)
        for seed in range(6)
    ]
    prices = results[0].prices
    mean_rates = {
        p: float(np.mean([r.inferred_rates[p] for r in results]))
        for p in prices
    }
    mean_latency = {
        p: float(
            np.mean([np.mean(r.latency_orders[p]) for r in results])
        )
        for p in prices
    }
    paper_prices, paper_rates = paper_amt_rates()
    rows = [
        (
            f"${p / 100:.2f}",
            mean_latency[p] / 60.0,
            mean_rates[p],
            paper_rates[paper_prices.index(float(p))],
        )
        for p in prices
    ]
    report(
        "fig4_reward_latency",
        format_table(
            ["reward", "mean accept latency/min", "inferred rate", "paper rate"],
            rows,
            title="Fig 4 — reward vs latency and inferred λ_o "
            f"(fit slope {results[0].fit.slope:.2e}, R² {results[0].fit.r_squared:.2f})",
        ),
    )
    # Shape: latency decreases with reward; rates increase with reward.
    latencies = [mean_latency[p] for p in prices]
    assert all(a > b for a, b in zip(latencies, latencies[1:]))
    rates = [mean_rates[p] for p in prices]
    assert all(a < b for a, b in zip(rates, rates[1:]))
    # Calibration: recovered rates within 2x of the paper's values.
    for p, paper_rate in zip(paper_prices, paper_rates):
        assert 0.5 < mean_rates[int(p)] / paper_rate < 2.0
