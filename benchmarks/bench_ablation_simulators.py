"""Ablation A2 — aggregate vs agent simulator agreement.

The tuning theory assumes the aggregate exponential model; the agent
engine derives acceptance behaviour from worker arrivals and choices.
This bench quantifies the agreement on a sequential workload where the
correspondence λ_o = Λ is exact (see tests/integration for why the
parallel case needs calibration), certifying the substitution claim in
DESIGN.md §3.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import format_table
from repro.market import (
    AgentSimulator,
    AggregateSimulator,
    AtomicTaskOrder,
    LinearPricing,
    MarketModel,
    TaskType,
    WorkerPool,
)


def test_engine_agreement(benchmark, report):
    lam = 5.0
    vote = TaskType("vote", processing_rate=2.0)
    market = MarketModel(LinearPricing(slope=0.0, intercept=lam))
    reps = 40
    trials = 60

    def run_pair(seed):
        order = AtomicTaskOrder(
            task_type=vote, prices=(2,) * reps, atomic_task_id=0
        )
        agent = AgentSimulator(WorkerPool(arrival_rate=lam), seed=seed)
        aggregate = AggregateSimulator(market, seed=seed + 50_000)
        return (
            agent.run_job([order]).makespan,
            aggregate.run_job([order]).makespan,
        )

    pairs = [run_pair(s) for s in range(trials)]
    agent_mean = float(np.mean([p[0] for p in pairs]))
    aggregate_mean = float(np.mean([p[1] for p in pairs]))
    analytic = reps * (1 / lam + 1 / vote.processing_rate)
    report(
        "ablation_simulators",
        format_table(
            ["engine", "mean makespan", "analytic expectation"],
            [
                ("agent", agent_mean, analytic),
                ("aggregate", aggregate_mean, analytic),
            ],
            title=(
                "Ablation A2 — engine agreement on a 40-repetition "
                f"sequential job ({trials} trials)"
            ),
        ),
    )
    assert agent_mean == pytest.approx(analytic, rel=0.1)
    assert aggregate_mean == pytest.approx(analytic, rel=0.1)
    assert agent_mean == pytest.approx(aggregate_mean, rel=0.15)

    benchmark(lambda: run_pair(0))
