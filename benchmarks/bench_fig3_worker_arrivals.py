"""Fig. 3 — worker arrival moments (the paper's AMT probe, simulated).

Issues image-filter tasks at one reward unit ($0.05) on the *agent*
engine and records the first 20 acceptance epochs plus both phase
latencies.  Expected shape: epochs grow linearly with order (Poisson
arrivals — the paper reads this off the plot; we quantify it with the
R² of the epoch-vs-order regression) while phase-2 latencies fluctuate
in a comparatively narrow band.
"""

from __future__ import annotations

from repro.experiments import fig3_experiment, format_table


def test_fig3_worker_arrivals(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig3_experiment(n_arrivals=20, price=5, seed=0),
        rounds=1,
        iterations=1,
    )
    rows = [
        (i + 1, epoch / 60.0, p1 / 60.0, p2 / 60.0)
        for i, (epoch, p1, p2) in enumerate(
            zip(
                result.arrival_epochs,
                result.phase1_latencies,
                result.phase2_latencies,
            )
        )
    ]
    report(
        "fig3_worker_arrivals",
        format_table(
            ["order", "epoch/min", "phase1/min", "phase2/min"],
            rows,
            title=(
                "Fig 3 — first 20 acceptance epochs at $0.05 "
                f"(epoch-vs-order R² = {result.linearity_r2:.3f})"
            ),
        ),
    )
    assert result.poisson_like, (
        f"arrival epochs should be linear in order; R²={result.linearity_r2:.3f}"
    )
