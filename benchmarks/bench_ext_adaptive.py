"""Extension E2 — adaptive re-tuning under market drift.

The paper's §3.3 argues for real-time parameter inference.  This bench
quantifies the payoff: a market whose price-response halves midway
through a multi-round job (a regime shift), tackled by

* a *static* tuner that keeps the initial (soon stale) belief, vs
* the :class:`~repro.core.adaptive.AdaptiveTuner`, which re-estimates
  λ_o(c) from each round's observed acceptances.

Both spend the same total budget; the adaptive tuner should end up
with a belief near the new regime while the static one stays wrong —
and its later-round allocations price accordingly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaptiveTuner, MarketBelief, Tuner
from repro.core.problem import HTuningProblem, TaskSpec
from repro.experiments import format_table
from repro.market import AggregateSimulator, LinearPricing, MarketModel, TaskType
from repro.market.simulator import AtomicTaskOrder


VOTE = TaskType("vote", processing_rate=2.0)
OLD_CURVE = LinearPricing(4.0, 1.0)   # generous market
NEW_CURVE = LinearPricing(0.8, 0.2)   # after the shift: much slower uptake
PRIOR = OLD_CURVE                     # both tuners start believing the old curve
ROUNDS = 6
SHIFT_AT = 2                          # regime shifts before round index 2
N_TASKS, REPS = 12, 2
TOTAL_BUDGET = 1800


def _simulator_for_round(round_index: int, seed: int) -> AggregateSimulator:
    curve = OLD_CURVE if round_index < SHIFT_AT else NEW_CURVE
    return AggregateSimulator(MarketModel(curve), seed=seed)


def _run_static(seed: int) -> float:
    """Static belief: tune every round with the stale prior."""
    remaining = TOTAL_BUDGET
    total_latency = 0.0
    for round_index in range(ROUNDS):
        round_budget = max(remaining // (ROUNDS - round_index), N_TASKS * REPS)
        tasks = [
            TaskSpec(i, REPS, PRIOR, VOTE.processing_rate, type_name=VOTE.name)
            for i in range(N_TASKS)
        ]
        problem = HTuningProblem(tasks, round_budget)
        allocation = Tuner(seed=seed).tune(problem)
        sim = _simulator_for_round(round_index, seed * 101 + round_index)
        orders = [
            AtomicTaskOrder(
                task_type=VOTE,
                prices=tuple(allocation[t.task_id]),
                atomic_task_id=t.task_id,
            )
            for t in problem.tasks
        ]
        job = sim.run_job(orders)
        total_latency += job.latency
        remaining -= job.total_paid
    return total_latency


#: Price at which the belief is judged.  The tuner's rounds price at
#: ~12–13 units, so the belief is *observed* there; extrapolating the
#: two-point fit far from the observed prices would only measure
#: estimator noise, not tracking.
ANCHOR_PRICE = 12


def _run_adaptive(seed: int) -> tuple[float, float]:
    tuner = AdaptiveTuner(VOTE, PRIOR, total_budget=TOTAL_BUDGET, decay=0.3,
                          seed=seed)
    for round_index in range(ROUNDS):
        sim = _simulator_for_round(round_index, seed * 101 + round_index)
        tuner.run_round(
            sim, n_tasks=N_TASKS, repetitions=REPS,
            rounds_left=ROUNDS - round_index,
        )
    learned_rate = tuner.belief.current_model()(ANCHOR_PRICE)
    return tuner.total_latency, learned_rate


def test_adaptive_vs_static_under_drift(benchmark, report):
    trials = 12
    static = [_run_static(s) for s in range(trials)]
    adaptive_runs = [_run_adaptive(s) for s in range(trials)]
    adaptive = [r[0] for r in adaptive_runs]
    learned = [r[1] for r in adaptive_runs]
    true_new = NEW_CURVE(ANCHOR_PRICE)
    true_old = OLD_CURVE(ANCHOR_PRICE)
    report(
        "ext_adaptive_drift",
        format_table(
            ["quantity", "value"],
            [
                ("mean total latency, static belief", float(np.mean(static))),
                ("mean total latency, adaptive", float(np.mean(adaptive))),
                (
                    f"learned rate at price {ANCHOR_PRICE} (mean)",
                    float(np.mean(learned)),
                ),
                (f"true post-shift rate at price {ANCHOR_PRICE}", true_new),
                (f"stale prior rate at price {ANCHOR_PRICE}", true_old),
            ],
            title="Extension E2 — adaptive re-tuning under a market "
            "regime shift",
        ),
    )
    # The adaptive belief must track the new regime, not the prior.
    mean_learned = float(np.mean(learned))
    assert abs(mean_learned - true_new) < abs(mean_learned - true_old)
    # And adaptive must not lose to static (same spend; on this
    # homogeneous workload a proportional miscalibration cannot change
    # EA's allocation, so the latencies tie — the belief tracking is
    # the payoff being certified).
    assert float(np.mean(adaptive)) <= float(np.mean(static)) * 1.1

    benchmark.pedantic(lambda: _run_adaptive(0), rounds=1, iterations=1)
