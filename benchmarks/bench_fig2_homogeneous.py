"""Fig. 2 (a)-(f) — Scenario I (Homogeneity) budget sweeps.

100 identical tasks × 5 repetitions, λ_p = 2.0, budgets 1000–5000;
EA (opt) vs bias_1 (α=0.67) vs bias_2 (α=0.75) under the six λ_o(c)
curves.  Expected shape (paper §5.1.2): opt <= bias_1 <= bias_2 at
every budget; flat curves for the price-insensitive case (c); quick
saturation for the price-sensitive cases (b) and (e).
"""

from __future__ import annotations

import pytest

from repro.core import STRATEGIES
from repro.experiments import fig2_experiment, format_series
from repro.workloads import PAPER_BUDGETS, homogeneity_workload

CASES = "abcdef"


@pytest.mark.parametrize("case", CASES)
def test_fig2_homogeneous_case(case, benchmark, report):
    result = benchmark.pedantic(
        lambda: fig2_experiment(
            "homo",
            case=case,
            budgets=PAPER_BUDGETS,
            n_tasks=100,
            scoring="mc",
            n_samples=1200,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    report(
        f"fig2_homo_{case}",
        format_series(
            "budget",
            result.budgets,
            result.series,
            title=f"Fig 2 homo({case}) — latency by budget "
            f"(opt=ea vs bias_1/bias_2, MC scoring)",
        ),
    )
    # Shape assertions: EA dominates both biased baselines (small MC slack).
    slack = 0.04 * max(result.series["bias_2"])
    assert result.dominates("ea", "bias_1", slack=slack)
    assert result.dominates("ea", "bias_2", slack=slack)


def test_ea_kernel_speed(benchmark):
    """EA itself is O(1) in the budget: time the allocation kernel."""
    from repro.core import even_allocation

    problem = homogeneity_workload(5000, case="a")
    benchmark(lambda: even_allocation(problem, rng=0))
