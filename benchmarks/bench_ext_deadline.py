"""Extension E1 — the dual problem: min-cost pricing for a deadline.

The paper positions H-Tuning against Gao & Parameswaran's
deadline-constrained pricing ([29], §2).  This bench runs the dual on
the Fig. 5(c)-style workload: for a ladder of deadlines, find the
cheapest group-uniform allocation that meets each with 90% confidence,
and cross-check duality — re-tuning the found cost with HA must yield
a latency quantile no worse than the deadline the money was sized for.
"""

from __future__ import annotations

import pytest

from repro import HTuningProblem, TaskSpec
from repro.core import (
    completion_probability,
    heterogeneous_algorithm,
    latency_quantile,
    min_cost_for_deadline,
)
from repro.experiments import format_table
from repro.market import LinearPricing


def _tasks():
    pricing = LinearPricing(1.0, 1.0)
    return [
        TaskSpec(0, 2, pricing, 5.0, type_name="easy"),
        TaskSpec(1, 2, pricing, 5.0, type_name="easy"),
        TaskSpec(2, 3, pricing, 3.0, type_name="hard"),
    ]


def test_min_cost_deadline_ladder(benchmark, report):
    deadlines = (2.5, 3.0, 4.0, 6.0, 10.0)
    confidence = 0.9
    rows = []
    costs = []
    for deadline in deadlines:
        result = min_cost_for_deadline(
            _tasks(), deadline=deadline, confidence=confidence, max_price=300
        )
        assert result.feasible, f"deadline {deadline} should be reachable"
        rows.append(
            (
                deadline,
                result.cost,
                result.achieved_probability,
            )
        )
        costs.append(result.cost)
    report(
        "ext_deadline_ladder",
        format_table(
            ["deadline", "min cost", "P(meet deadline)"],
            rows,
            title="Extension E1 — cheapest allocation per deadline "
            f"(confidence {confidence})",
        ),
    )
    # Tighter deadlines cost (weakly) more.
    assert all(a >= b for a, b in zip(costs, costs[1:]))

    benchmark(
        lambda: min_cost_for_deadline(
            _tasks(), deadline=3.0, confidence=0.9, max_price=300
        )
    )


def test_duality_with_h_tuning(report):
    """Spend the dual's budget through HA: the 90%-quantile of the
    tuned allocation must not exceed the deadline the budget was sized
    for (H-Tuning can only improve on the dual's own allocation)."""
    deadline, confidence = 3.0, 0.9
    dual = min_cost_for_deadline(
        _tasks(), deadline=deadline, confidence=confidence, max_price=300
    )
    problem = HTuningProblem(_tasks(), budget=dual.cost)
    ha = heterogeneous_algorithm(problem)
    prices = {g.key: ha.uniform_group_price(g) for g in problem.groups()}
    q = latency_quantile(problem, prices, confidence)
    prob = completion_probability(problem, prices, deadline)
    report(
        "ext_deadline_duality",
        format_table(
            ["quantity", "value"],
            [
                ("deadline (input to dual)", deadline),
                ("dual min cost", dual.cost),
                ("HA 90%-quantile at that budget", q),
                ("HA P(meet deadline)", prob),
            ],
            title="Extension E1 — duality cross-check",
        ),
    )
    assert q <= deadline * 1.05
    assert prob >= confidence * 0.98
