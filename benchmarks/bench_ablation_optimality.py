"""Ablation A1 — how close are the paper's DPs to the exact optimum?

RA's budget-indexed DP vs the exact knapsack DP on the surrogate
objective, and HA's compromise vs exhaustive closeness minimization on
small instances.  DESIGN.md's claim: zero gap under convex (linear-
pricing) group latencies.  Also quantifies the greedy single-path
variant's gap — the reason the faithful DP matters.
"""

from __future__ import annotations

import numpy as np

from repro import HTuningProblem, TaskSpec
from repro.core import (
    budget_indexed_dp,
    closeness,
    exact_group_dp,
    exhaustive_group_search,
    greedy_marginal_allocation,
    group_onhold_latency,
    heterogeneous_algorithm,
    surrogate_onhold_objective,
    utopia_point,
)
from repro.experiments import format_table
from repro.market import LinearPricing


def _repe_problem(budget):
    pricing = LinearPricing(2.0, 1.0)
    tasks = []
    tid = 0
    for reps, n in ((3, 4), (5, 3), (2, 5)):
        for _ in range(n):
            tasks.append(TaskSpec(tid, reps, pricing, 2.0, type_name="x"))
            tid += 1
    return HTuningProblem(tasks, budget)


def test_ra_dp_vs_exact_and_greedy(benchmark, report):
    budgets = list(range(40, 241, 20))
    rows = []
    worst_dp_gap = 0.0
    worst_greedy_gap = 0.0
    for budget in budgets:
        problem = _repe_problem(budget)
        dp = budget_indexed_dp(
            problem.groups(), problem.budget, group_onhold_latency
        )
        greedy = greedy_marginal_allocation(
            problem.groups(), problem.budget, group_onhold_latency
        )
        exact = exact_group_dp(problem, group_onhold_latency)
        dp_val = surrogate_onhold_objective(problem, dp)
        greedy_val = surrogate_onhold_objective(problem, greedy)
        exact_val = surrogate_onhold_objective(problem, exact)
        worst_dp_gap = max(worst_dp_gap, dp_val - exact_val)
        worst_greedy_gap = max(worst_greedy_gap, greedy_val - exact_val)
        rows.append((budget, exact_val, dp_val, greedy_val))
    report(
        "ablation_ra_optimality",
        format_table(
            ["budget", "exact", "RA dp", "greedy"],
            rows,
            title=(
                "Ablation A1a — RA's DP vs exact optimum vs single-path "
                f"greedy (worst DP gap {worst_dp_gap:.2e}, worst greedy gap "
                f"{worst_greedy_gap:.2e})"
            ),
        ),
    )
    assert worst_dp_gap < 1e-9

    problem = _repe_problem(240)
    benchmark(
        lambda: budget_indexed_dp(
            problem.groups(), problem.budget, group_onhold_latency
        )
    )


def test_ha_vs_exhaustive_closeness(benchmark, report):
    pricing_a = LinearPricing(1.0, 1.0)
    pricing_b = LinearPricing(2.0, 1.0)
    rows = []
    worst_gap = 0.0
    for budget in (12, 20, 31, 45, 60):
        tasks = [
            TaskSpec(0, 2, pricing_a, 2.0, type_name="a"),
            TaskSpec(1, 2, pricing_a, 2.0, type_name="a"),
            TaskSpec(2, 3, pricing_b, 0.5, type_name="b"),
        ]
        problem = HTuningProblem(tasks, budget)
        utopia = utopia_point(problem)
        ha = heterogeneous_algorithm(problem, return_details=True)
        _prices, best_cl = exhaustive_group_search(
            problem, lambda p, gp: closeness(p, gp, utopia)
        )
        worst_gap = max(worst_gap, ha.closeness - best_cl)
        rows.append((budget, best_cl, ha.closeness))
    report(
        "ablation_ha_optimality",
        format_table(
            ["budget", "exhaustive CL", "HA CL"],
            rows,
            title=f"Ablation A1b — HA vs exhaustive closeness "
            f"(worst gap {worst_gap:.2e})",
        ),
    )
    assert worst_gap < 1e-6

    tasks = [
        TaskSpec(0, 2, pricing_a, 2.0, type_name="a"),
        TaskSpec(1, 2, pricing_a, 2.0, type_name="a"),
        TaskSpec(2, 3, pricing_b, 0.5, type_name="b"),
    ]
    problem = HTuningProblem(tasks, 60)
    benchmark(lambda: heterogeneous_algorithm(problem))
