"""Ablation A3 — algorithm runtime scaling.

The paper claims O(1) for EA and O(nB') for RA/HA.  This bench times
the kernels over growing budgets and group counts so regressions in
the DP's complexity are caught, and records the measured scaling
ratios alongside the timings.
"""

from __future__ import annotations

import time

import pytest

from repro.core import (
    even_allocation,
    heterogeneous_algorithm,
    repetition_algorithm,
)
from repro.experiments import format_table
from repro.workloads import (
    homogeneity_workload,
    many_groups_problem,
    repetition_workload,
)


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_ea_constant_in_budget(benchmark, report):
    rows = []
    times = []
    for budget in (1000, 10_000, 100_000):
        problem = homogeneity_workload(budget, case="a")
        t = _time(lambda p=problem: even_allocation(p, rng=0))
        times.append(t)
        rows.append((budget, t * 1e3))
    report(
        "ablation_scaling_ea",
        format_table(
            ["budget", "time/ms"],
            rows,
            title="Ablation A3a — EA time vs budget (should be ~flat)",
        ),
    )
    # 100x budget must not cost anywhere near 100x time.
    assert times[-1] < times[0] * 20 + 0.05
    benchmark(lambda: even_allocation(homogeneity_workload(5000), rng=0))


def test_ra_linear_in_budget(benchmark, report):
    rows = []
    times = []
    budgets = (2000, 4000, 8000)
    for budget in budgets:
        problem = repetition_workload(budget, case="a")
        t = _time(lambda p=problem: repetition_algorithm(p))
        times.append(t)
        rows.append((budget, t * 1e3))
    report(
        "ablation_scaling_ra",
        format_table(
            ["budget", "time/ms"],
            rows,
            title="Ablation A3b — RA time vs budget (O(nB') — ~linear)",
        ),
    )
    # Doubling B' should not quadruple the time (super-linear blowup).
    assert times[-1] < times[0] * 16 + 0.1
    benchmark(lambda: repetition_algorithm(repetition_workload(5000)))


def test_ha_scales_with_groups(benchmark, report):
    rows = []
    for n_groups in (2, 5, 10, 20):
        problem = many_groups_problem(n_groups, 3, seed=0)
        t = _time(lambda p=problem: heterogeneous_algorithm(p))
        rows.append((n_groups, problem.budget, t * 1e3))
    report(
        "ablation_scaling_ha",
        format_table(
            ["groups", "budget", "time/ms"],
            rows,
            title="Ablation A3c — HA time vs group count",
        ),
    )
    benchmark(
        lambda: heterogeneous_algorithm(many_groups_problem(5, 3, seed=0))
    )
