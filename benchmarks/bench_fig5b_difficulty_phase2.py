"""Fig. 5(b) — difficulty vs Phase-2 (processing) latency.

Same workload as Fig. 5(a); the processing latency must increase with
the vote count but be *insensitive to the reward* (the paper's core
modelling assumption: payment cannot buy faster processing).
"""

from __future__ import annotations

import pytest

from repro.experiments import fig5ab_experiment, format_table


def test_fig5b_difficulty_vs_phase2(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig5ab_experiment(
            vote_counts=(4, 6, 8), prices=(5, 8), repetitions=10,
            n_tasks=60, seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for votes in result.vote_counts:
        for price in result.prices:
            rows.append(
                (
                    f"{votes}v",
                    f"${price / 100:.2f}",
                    result.mean_phase2[(votes, price)],
                )
            )
    report(
        "fig5b_difficulty_phase2",
        format_table(
            ["difficulty", "reward", "mean phase-2 latency/s"],
            rows,
            title="Fig 5(b) — harder tasks take longer to process; "
            "reward does not buy processing speed",
        ),
    )
    for price in result.prices:
        assert result.phase2_increases_with_difficulty(price)
    # Price-independence of phase 2 (within Monte-Carlo noise).
    for votes in result.vote_counts:
        cheap = result.mean_phase2[(votes, 5)]
        rich = result.mean_phase2[(votes, 8)]
        assert rich == pytest.approx(cheap, rel=0.15)
