"""Fig. 2 (m)-(r) — Scenario III (Heterogeneous) budget sweeps.

50 tasks × 3 reps (λ_p = 2.0) + 50 tasks × 5 reps (λ_p = 3.0);
HA (opt) vs task-even (te) vs rep-even (re).

Expected shape: HA at or below te everywhere; re is near-optimal on
this *symmetric* workload (the surrogate-objective gap the paper
acknowledges in §4.3.1), so HA must track it within a few percent —
HA's decisive wins on asymmetric difficulty are certified by
bench_fig5c and the ablation benches.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig2_experiment, format_series
from repro.workloads import PAPER_BUDGETS, heterogeneous_workload

CASES = "abcdef"


@pytest.mark.parametrize("case", CASES)
def test_fig2_heterogeneous_case(case, benchmark, report):
    result = benchmark.pedantic(
        lambda: fig2_experiment(
            "heter",
            case=case,
            budgets=PAPER_BUDGETS,
            n_tasks=100,
            scoring="mc",
            n_samples=1200,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    report(
        f"fig2_heter_{case}",
        format_series(
            "budget",
            result.budgets,
            result.series,
            title=f"Fig 2 heter({case}) — latency by budget "
            f"(opt=ha vs te/re, MC scoring)",
        ),
    )
    slack_te = 0.04 * max(result.series["te"])
    slack_re = 0.05 * max(result.series["re"])
    assert result.dominates("ha", "te", slack=slack_te)
    assert result.dominates("ha", "re", slack=slack_re)


def test_ha_kernel_speed(benchmark):
    """HA's DP (incl. utopia point): time one allocation at B = 5000."""
    from repro.core import heterogeneous_algorithm

    problem = heterogeneous_workload(5000, case="a")
    benchmark(lambda: heterogeneous_algorithm(problem))
