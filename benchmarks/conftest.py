"""Shared helpers for the benchmark harness.

Every bench module regenerates one table/figure of the paper: it
prints the series (the same rows the paper plots) and writes them to
``benchmarks/results/`` so the reproduction record survives pytest's
output capture.  The pytest-benchmark timings measure the tuning /
simulation kernels themselves.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Print *and* persist a reproduction report."""

    def _report(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report
