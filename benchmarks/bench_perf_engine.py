"""Scalar-vs-batch engine benchmark → ``BENCH_perf_engine.json``.

Times the hot paths the ``repro.perf`` subsystem vectorized, on a
Fig. 2-sized workload, against the seed implementations:

* **Monte-Carlo job sampling** — 1000 replications of a 100-task job:
  event-level :class:`AggregateSimulator` ``run_job`` loop vs one
  :class:`BatchAggregateSimulator` phase-matrix draw (results are
  bit-identical seed-for-seed, which the run asserts).
* **Allocation sampling** — ``sample_job_latencies`` scalar vs batch
  engine (same RNG stream, reported for the perf trajectory).
* **budget_indexed_dp sweep** — per-budget seed DP runs vs the
  single-pass :func:`budget_indexed_dp_sweep` (price vectors asserted
  identical).
* **One-pass strategy sweeps** — the production per-budget tuning path
  (workload factory + RA/HA per budget, what the Fig. 2 harness did
  before ``ProblemFamily``) vs ``repetition_algorithm_sweep`` /
  ``heterogeneous_algorithm_sweep`` over one shared family
  (allocations asserted identical).
* **Chunked batch sampling** — the scalar sampler vs the
  memory-bounded ``chunked-batch`` engine (bit-identity asserted for
  several chunk sizes).
* **Deadline–cost frontier** — the seed scalar ``min_cost_for_deadline``
  per deadline vs the batched deadline-kernel sweep
  (``min_cost_for_deadline_sweep`` through ``deadline_cost_frontier``;
  prices/costs/probabilities asserted identical).
* **Agent-market replications** — the seed per-event agent loop run
  once per replication vs the lock-step structure-of-arrays engine
  (``run_replications(engine="agent-batch")``) on a Fig. 3-sized job;
  trajectories asserted trace-for-trace identical, with the null
  recorder's fast path measured alongside the full-trace run.
* **Session run_many** — a batch of serialized ``repro.api`` specs
  executed through one shared-cache ``Session.run_many`` vs cold
  isolated per-run sessions (payloads asserted identical).
* **Session resilience** — the default fast path vs the armed
  resilience executor (empty ``FaultPlan`` + retry policy, every
  fault-site check live); payloads asserted identical and the
  overhead reported as ``overhead_pct`` (the tier-1 smoke test caps
  it at 5%).
* **Executor scaling** — ``Session.run_many`` spec batches and
  sharded replication ensembles on the supervised process pool at
  1/2/4 workers vs the serial loop (reports byte-identical), plus the
  recovery overhead of one injected worker kill.  Spawns real
  subprocesses, so the tier-1 smoke suite asserts on the committed
  numbers and only the ``parallel-executor`` CI job re-runs it.
* **Store serving** — cold compute vs warm memoized serving through
  the crash-safe result store (``Session.run(store=...)``): one
  verified disk read (sha256 + validity envelope) instead of a full
  numeric sweep, plus a 100-spec ``run_many`` hit-rate sweep asserted
  to come back 100% served and byte-identical on re-submission.
* **Service latency** — the live ``repro.serve`` HTTP service under
  three request shapes (cold submit→poll→result, warm-store re-serving
  on a fresh service instance, online DP-priced market allocations):
  p50/p95/p99 per shape plus requests/sec, with every served document
  asserted byte-identical to a direct ``Session.run``.  Binds real
  sockets, so tier-1 asserts on the committed numbers and the
  ``service-layer`` CI job re-runs it live.

Run directly (``python benchmarks/bench_perf_engine.py``) to write
``BENCH_perf_engine.json`` at the repo root; ``--sections NAME ...``
reruns just the named sections (merging them over the committed JSON).
The tier-1 suite runs a reduced smoke variant through
``tests/perf/test_bench_smoke.py``.  CI's bench-drift job runs
``--quick --check BENCH_perf_engine.json``: reduced sizes, no JSON
write, and a failure if any section loses the identity flags or
regresses by more than the (generous) drift factor against the
committed numbers.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import time

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_perf_engine.json"


def _fig2_problem(n_tasks: int):
    from repro.workloads import repetition_workload

    # Fig. 2 Scenario II sizing: mixed repetition groups, case (a).
    return repetition_workload(budget=25 * n_tasks, case="a", n_tasks=n_tasks)


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_mc_sampling(n_samples: int = 1000, n_tasks: int = 100) -> dict:
    """Event-level scalar simulator vs batched phase-matrix sampling."""
    from repro.market.simulator import (
        AggregateSimulator,
        AtomicTaskOrder,
        MarketModel,
    )
    from repro.market.pricing import LinearPricing
    from repro.market.task import TaskType
    from repro.perf import BatchAggregateSimulator

    market = MarketModel(LinearPricing(slope=1.0, intercept=1.0))
    task_type = TaskType("fig2", processing_rate=2.0)
    orders = [
        AtomicTaskOrder(task_type, (2,) * (1 + i % 3), i)
        for i in range(n_tasks)
    ]

    def scalar():
        sim = AggregateSimulator(market, seed=0)
        return np.array(
            [sim.run_job(orders).makespan for _ in range(n_samples)]
        )

    def batch():
        return BatchAggregateSimulator(market, seed=0).sample_makespans(
            orders, n_samples
        )

    if not np.array_equal(scalar(), batch()):
        raise AssertionError("batch simulator diverged from scalar engine")
    t_scalar = _time(scalar, repeats=1)
    t_batch = _time(batch)
    return {
        "workload": f"{n_samples} samples x {n_tasks} tasks",
        "scalar_seconds": t_scalar,
        "batch_seconds": t_batch,
        "scalar_jobs_per_sec": n_samples / t_scalar,
        "batch_jobs_per_sec": n_samples / t_batch,
        "speedup": t_scalar / t_batch,
        "bit_identical": True,
    }


def bench_allocation_sampling(n_samples: int = 1000, n_tasks: int = 100) -> dict:
    """sample_job_latencies: scalar engine vs batch engine."""
    from repro.core.latency import sample_job_latencies
    from repro.core.problem import Allocation
    from repro.perf import sample_job_latencies_batch

    problem = _fig2_problem(n_tasks)
    alloc = Allocation.uniform(problem, 2)

    def scalar():
        return sample_job_latencies(
            problem, alloc, n_samples, rng=np.random.default_rng(0)
        )

    def batch():
        return sample_job_latencies_batch(
            problem, alloc, n_samples, rng=np.random.default_rng(0)
        )

    if not np.array_equal(scalar(), batch()):
        raise AssertionError("batch sampler diverged from scalar engine")
    t_scalar = _time(scalar)
    t_batch = _time(batch)
    return {
        "workload": f"{n_samples} samples x {n_tasks} tasks",
        "scalar_seconds": t_scalar,
        "batch_seconds": t_batch,
        "scalar_samples_per_sec": n_samples / t_scalar,
        "batch_samples_per_sec": n_samples / t_batch,
        "speedup": t_scalar / t_batch,
        "bit_identical": True,
    }


def bench_dp_sweep(n_tasks: int = 100, n_budgets: int = 9) -> dict:
    """Seed per-budget DP runs vs the single-pass array sweep."""
    from repro.core.latency import group_onhold_latency
    from repro.perf.dp import budget_indexed_dp_sweep
    from repro.perf.reference import reference_budget_indexed_dp

    problem = _fig2_problem(n_tasks)
    groups = problem.groups()
    start = sum(g.unit_cost for g in groups)
    budgets = [
        start + int(round(k * (problem.budget - start) / (n_budgets - 1)))
        for k in range(n_budgets)
    ]

    def seed_runs():
        return {
            b: reference_budget_indexed_dp(groups, b, group_onhold_latency)
            for b in budgets
        }

    def sweep():
        return budget_indexed_dp_sweep(groups, budgets, group_onhold_latency)

    if seed_runs() != sweep():
        raise AssertionError("DP sweep price vectors diverged from seed DP")
    t_seed = _time(seed_runs)
    t_sweep = _time(sweep)
    return {
        "workload": f"{len(groups)} groups, {n_budgets} budgets up to "
        f"{problem.budget}",
        "seed_seconds": t_seed,
        "sweep_seconds": t_sweep,
        "seed_budgets_per_sec": n_budgets / t_seed,
        "sweep_budgets_per_sec": n_budgets / t_sweep,
        "speedup": t_seed / t_sweep,
        "outputs_identical": True,
    }


def bench_one_pass_sweep(n_tasks: int = 100, n_budgets: int = 9) -> dict:
    """Per-budget factory+tune (the pre-family Fig. 2 harness path) vs
    one-pass family sweeps.

    The headline ``speedup`` is the RA path — the strategy that rides
    :func:`budget_indexed_dp_sweep` end to end (one DP pass serves
    every budget).  HA is reported alongside: its utopia points and
    phase-1 tables are computed once per sweep, but the closeness scan
    deliberately stays per-budget (its tie margin compares against
    budget-specific utopia coordinates), so its gain is bounded by the
    scan's share of the runtime.
    """
    from repro.core import (
        heterogeneous_algorithm,
        heterogeneous_algorithm_sweep,
        repetition_algorithm,
        repetition_algorithm_sweep,
    )
    from repro.workloads import (
        heterogeneous_family,
        heterogeneous_workload,
        repetition_family,
        repetition_workload,
    )

    max_budget = 25 * n_tasks
    start = 8 * n_tasks  # comfortably above the feasibility floor
    budgets = [
        start + int(round(k * (max_budget - start) / (n_budgets - 1)))
        for k in range(n_budgets)
    ]
    ra_family = repetition_family(n_tasks=n_tasks)
    ha_family = heterogeneous_family(n_tasks=n_tasks)

    def ra_per_budget():
        return {
            b: repetition_algorithm(
                repetition_workload(b, n_tasks=n_tasks), strict_scenario=False
            )
            for b in budgets
        }

    def ra_one_pass():
        return repetition_algorithm_sweep(ra_family, budgets)

    def ha_per_budget():
        return {
            b: heterogeneous_algorithm(heterogeneous_workload(b, n_tasks=n_tasks))
            for b in budgets
        }

    def ha_one_pass():
        return heterogeneous_algorithm_sweep(ha_family, budgets)

    if ra_per_budget() != ra_one_pass():
        raise AssertionError("RA one-pass sweep allocations diverged")
    if ha_per_budget() != ha_one_pass():
        raise AssertionError("HA one-pass sweep allocations diverged")
    t_ra_per_budget = _time(ra_per_budget)
    t_ra_one_pass = _time(ra_one_pass)
    t_ha_per_budget = _time(ha_per_budget)
    t_ha_one_pass = _time(ha_one_pass)
    return {
        "workload": f"{n_budgets} budgets up to {max_budget}, "
        f"{n_tasks} tasks",
        "ra_per_budget_seconds": t_ra_per_budget,
        "ra_one_pass_seconds": t_ra_one_pass,
        "ha_per_budget_seconds": t_ha_per_budget,
        "ha_one_pass_seconds": t_ha_one_pass,
        "speedup": t_ra_per_budget / t_ra_one_pass,
        "ha_speedup": t_ha_per_budget / t_ha_one_pass,
        "outputs_identical": True,
    }


def bench_chunked_sampling(n_samples: int = 1000, n_tasks: int = 100) -> dict:
    """Scalar sampler vs the memory-bounded chunked-batch engine."""
    from repro.core.latency import sample_job_latencies
    from repro.core.problem import Allocation
    from repro.perf import sample_job_latencies_batch

    problem = _fig2_problem(n_tasks)
    alloc = Allocation.uniform(problem, 2)

    def scalar():
        return sample_job_latencies(
            problem, alloc, n_samples, rng=np.random.default_rng(0)
        )

    chunk_rows = 64

    def chunked():
        return sample_job_latencies_batch(
            problem,
            alloc,
            n_samples,
            rng=np.random.default_rng(0),
            chunk_rows=chunk_rows,
        )

    reference = scalar()
    for rows in (1, 16, chunk_rows):
        out = sample_job_latencies_batch(
            problem, alloc, n_samples, rng=np.random.default_rng(0),
            chunk_rows=rows,
        )
        if not np.array_equal(reference, out):
            raise AssertionError(
                f"chunked sampler (chunk_rows={rows}) diverged from scalar"
            )
    t_scalar = _time(scalar)
    t_chunked = _time(chunked)
    return {
        "workload": f"{n_samples} samples x {n_tasks} tasks, "
        f"chunk_rows={chunk_rows}",
        "scalar_seconds": t_scalar,
        "chunked_seconds": t_chunked,
        "scalar_samples_per_sec": n_samples / t_scalar,
        "chunked_samples_per_sec": n_samples / t_chunked,
        "speedup": t_scalar / t_chunked,
        "bit_identical": True,
    }


def bench_deadline_frontier(
    n_tasks: int = 100, n_deadlines: int = 20, max_price: int = 50
) -> dict:
    """Seed per-deadline comparator vs the batched deadline-kernel sweep.

    The reference is the preserved scalar ``min_cost_for_deadline``
    (fresh kernel per probe, :mod:`repro.perf.reference`); the fast
    path is ``deadline_cost_frontier`` over one family — shared
    problem/groups, shared profile tables, batched ladder builds and
    Poisson mixing, memoized completion terms.  The batched timing
    clears the process-level phase caches first, so it measures a cold
    sweep, not a warm rerun.
    """
    from repro.experiments.pareto import deadline_cost_frontier
    from repro.perf import clear_phase_caches
    from repro.perf.reference import reference_min_cost_for_deadline
    from repro.workloads import repetition_family

    family = repetition_family(n_tasks=n_tasks)
    tasks = family.tasks
    confidence = 0.9
    deadlines = [float(d) for d in np.linspace(1.5, 12.0, n_deadlines)]

    def reference():
        return [
            reference_min_cost_for_deadline(
                tasks, d, confidence, max_price=max_price
            )
            for d in deadlines
        ]

    def batched():
        clear_phase_caches()
        return deadline_cost_frontier(
            family, deadlines, confidence=confidence, max_price=max_price
        )

    seed_results = reference()
    frontier = batched()
    for seed, point in zip(seed_results, frontier.points):
        if (
            seed.group_prices != point.group_prices
            or seed.cost != point.cost
            or seed.achieved_probability != point.achieved_probability
        ):
            raise AssertionError(
                f"batched deadline sweep diverged from the seed comparator "
                f"at deadline {point.deadline}"
            )
    t_seed = _time(reference)
    # The batched sweep is ~10× shorter per run, so scheduler noise is
    # ~10× larger relative to it; more best-of repeats filter that out
    # at negligible wall-clock cost.
    t_batched = _time(batched, repeats=7)
    return {
        "workload": f"{n_deadlines} deadlines, {n_tasks} tasks, "
        f"max_price={max_price}",
        "seed_seconds": t_seed,
        "batched_seconds": t_batched,
        "seed_deadlines_per_sec": n_deadlines / t_seed,
        "batched_deadlines_per_sec": n_deadlines / t_batched,
        "speedup": t_seed / t_batched,
        "outputs_identical": True,
    }


def bench_session_run_many(n_tasks: int = 100, n_budgets: int = 9) -> dict:
    """Batched spec submission vs cold per-run sessions (`repro.api`).

    Four serialized :class:`~repro.api.BudgetSweepSpec` documents —
    numeric-scored RA/RE sweeps of the same Fig. 2 family over
    *overlapping* budget grids, the shape of a batch of related
    what-if requests — run two ways: one ``Session().run_many(specs)``
    batch, where every phase-kernel cdf / weight-ladder table built by
    one run is reused by the next (a budget shared by two specs tunes
    to the same allocation, so its latency kernel is evaluated once),
    versus ``Session(isolated=True)`` cold runs where each spec pays
    its own kernel builds — the per-request cost a naive
    one-session-per-request service would pay.  Payloads are asserted
    identical between the two modes: the process caches are bit-exact,
    so sharing is free accuracy-wise.
    """
    from repro.api import BudgetSweepSpec, Session
    from repro.perf import clear_phase_caches

    top = 1000 + 500 * max(int(n_budgets) - 1, 1)
    grids = [
        tuple(range(1000, top + 1, 500)),
        tuple(range(1000, max(top - 1000, 1500) + 1, 500)),
        tuple(range(1500, top + 1, 500)),
        tuple(range(1000, top + 1, 1000)),
    ]
    specs = [
        BudgetSweepSpec(
            family="repe",
            case="a",
            n_tasks=n_tasks,
            budgets=grid,
            strategies=("ra", "re"),
            scoring="numeric",
        )
        for grid in grids
    ]

    def shared():
        clear_phase_caches()  # one cold start for the whole batch
        return [r.payload for r in Session().run_many(specs)]

    def cold():
        return [r.payload for r in Session(isolated=True).run_many(specs)]

    shared_payloads = shared()
    cold_payloads = cold()
    if shared_payloads != cold_payloads:
        raise AssertionError(
            "shared-cache session payloads diverged from cold per-run "
            "sessions"
        )
    t_cold = _time(cold, repeats=3)
    t_shared = _time(shared, repeats=5)
    return {
        "workload": f"{len(specs)} numeric budget-sweep specs "
        f"(overlapping grids up to {top}, {n_tasks} tasks, ra+re)",
        "cold_seconds": t_cold,
        "shared_seconds": t_shared,
        "cold_specs_per_sec": len(specs) / t_cold,
        "shared_specs_per_sec": len(specs) / t_shared,
        "speedup": t_cold / t_shared,
        "outputs_identical": True,
        "note": "cold = Session(isolated=True), phase caches cleared "
        "before every run; shared = one run_many batch reusing the "
        "process-level cdf/ladder tables across specs",
    }


def bench_session_resilience(
    n_samples: int = 1000, n_tasks: int = 100, n_budgets: int = 9
) -> dict:
    """Default fast path vs the armed resilience executor.

    The same Monte-Carlo budget-sweep specs run two ways: the default
    ``Session`` path (``faults``/``retry``/``timeout`` all ``None`` —
    the resilience runtime never activates, every ``site_check`` is
    one global load and a ``None`` test), and the *armed* path — an
    empty :class:`~repro.resilience.FaultPlan` plus a retry policy,
    which routes the run through ``Session._run_resilient`` and keeps
    the fault-site checks live (rule matching against an empty rule
    set) at ``run.start``, ``engine.sample`` and friends.  Payloads
    are asserted identical — the armed executor must be a pure
    pass-through when no rule fires — and the headline number is
    ``overhead_pct``, the price of arming the machinery.  The tier-1
    smoke test caps it at 5%.
    """
    from repro.api import BudgetSweepSpec, RunConfig, Session
    from repro.perf import clear_phase_caches

    top = 1000 + 500 * max(int(n_budgets) - 1, 1)
    grids = [
        tuple(range(1000, top + 1, 500)),
        tuple(range(1500, top + 1, 500)),
    ]
    specs = [
        BudgetSweepSpec(
            family="repe",
            case="a",
            n_tasks=n_tasks,
            budgets=grid,
            strategies=("ra", "re"),
            scoring="mc",
            n_samples=n_samples,
        )
        for grid in grids
    ]
    default_config = RunConfig(engine="batch")
    armed_config = RunConfig(
        engine="batch",
        faults={"rules": [], "seed": 0},
        retry={"attempts": 2},
    )

    def default():
        clear_phase_caches()
        return [r.payload for r in Session(default_config).run_many(specs)]

    def armed():
        clear_phase_caches()
        return [r.payload for r in Session(armed_config).run_many(specs)]

    t0 = time.perf_counter()
    baseline = default()
    single_call = time.perf_counter() - t0
    if baseline != armed():
        raise AssertionError(
            "armed resilience executor payloads diverged from the "
            "default fast path"
        )
    # The two paths are within a few percent of each other, so clock
    # drift between two sequential best-of blocks would swamp the
    # signal; interleave the repeats so both see the same drift, and
    # amortize each timed sample over enough calls (~50ms blocks) that
    # one scheduler hiccup cannot swing the ratio at smoke sizes.
    calls_per_block = max(1, math.ceil(0.05 / max(single_call, 1e-9)))
    t_default = float("inf")
    t_armed = float("inf")
    for _ in range(7):
        t0 = time.perf_counter()
        for _ in range(calls_per_block):
            default()
        t_default = min(t_default, (time.perf_counter() - t0) / calls_per_block)
        t0 = time.perf_counter()
        for _ in range(calls_per_block):
            armed()
        t_armed = min(t_armed, (time.perf_counter() - t0) / calls_per_block)
    return {
        "workload": f"{len(specs)} mc budget-sweep specs "
        f"({n_samples} samples, grids up to {top}, {n_tasks} tasks, ra+re)",
        "default_seconds": t_default,
        "armed_seconds": t_armed,
        "speedup": t_default / t_armed,
        "overhead_pct": (t_armed / t_default - 1.0) * 100.0,
        "outputs_identical": True,
        "note": "armed = empty FaultPlan + RetryPolicy(attempts=2): the "
        "resilient executor with every fault-site check live but no "
        "rule firing; speedup ~1.0 by design, overhead_pct is the "
        "headline",
    }


def bench_agent_market_replications(
    n_replications: int = 64, n_arrivals: int = 20
) -> dict:
    """Seed per-replication agent event loop vs the lock-step SoA engine.

    A Fig. 3-sized job (*n_arrivals* single-repetition dot-filter
    tasks at $0.05 on the calibrated AMT market) replicated across
    *n_replications* independent seeds.  The reference is the
    preserved seed loop (:func:`~repro.perf.reference.reference_agent_run_job`,
    one full ``TraceRecorder`` per replication — the only trace mode
    the seed engine offers); the fast path is
    ``run_replications(engine="agent-batch")`` with the shared null
    recorder, the configuration a latency/answer replication study
    uses.  ``batched_traced_seconds`` reports the lock-step engine
    producing the *full* per-replication traces, and the run first
    certifies trace-for-trace equality between both engines on that
    configuration (same makespans, payments, arrival epochs, and
    per-record timestamps — ``bit_identical``).
    """
    from repro.market.simulator import AgentSimulator, AtomicTaskOrder
    from repro.market.trace import NULL_RECORDER, TraceRecorder
    from repro.perf.reference import reference_agent_run_job
    from repro.stats.rng import ensure_rng
    from repro.workloads.amt import amt_task_type, amt_worker_pool

    task_type = amt_task_type(votes=4)
    orders = [
        AtomicTaskOrder(task_type=task_type, prices=(5,), atomic_task_id=i)
        for i in range(n_arrivals)
    ]
    seeds = list(range(n_replications))

    def reference():
        sim = AgentSimulator(amt_worker_pool(), seed=0, max_sim_time=1e9)
        return [
            reference_agent_run_job(sim, orders, rng=ensure_rng(s))
            for s in seeds
        ]

    def batched(recorders):
        sim = AgentSimulator(amt_worker_pool(), seed=0, max_sim_time=1e9)
        return sim.run_replications(
            orders, seeds=seeds, recorders=recorders, engine="agent-batch"
        )

    def record_key(record):
        return (
            record.atomic_task_id,
            record.repetition_index,
            record.type_name,
            record.price,
            record.published_at,
            record.accepted_at,
            record.completed_at,
        )

    ref_results = reference()
    fast_results = batched([TraceRecorder() for _ in seeds])
    for ref, fast in zip(ref_results, fast_results):
        if (
            ref.makespan != fast.makespan
            or ref.per_atomic_completion != fast.per_atomic_completion
            or ref.total_paid != fast.total_paid
            or ref.answers != fast.answers
            or ref.trace.worker_arrival_times
            != fast.trace.worker_arrival_times
            or [record_key(r) for r in ref.trace.records]
            != [record_key(r) for r in fast.trace.records]
        ):
            raise AssertionError(
                "agent-batch replication trajectories diverged from the "
                "seed event loop"
            )

    t_reference = _time(reference, repeats=3)
    t_batched = _time(lambda: batched(NULL_RECORDER), repeats=9)
    t_traced = _time(lambda: batched(None), repeats=5)
    return {
        "workload": f"{n_replications} replications x {n_arrivals} tasks "
        "(fig3-sized job, AMT market)",
        "reference_seconds": t_reference,
        "batched_seconds": t_batched,
        "batched_traced_seconds": t_traced,
        "reference_replications_per_sec": n_replications / t_reference,
        "batched_replications_per_sec": n_replications / t_batched,
        "speedup": t_reference / t_batched,
        "traced_speedup": t_reference / t_traced,
        "bit_identical": True,
        "note": "batched_seconds uses the NullTraceRecorder fast path "
        "(the replication-study configuration); batched_traced_seconds "
        "materializes full per-replication traces",
    }


def bench_executor_scaling(
    n_samples: int = 1000,
    n_tasks: int = 100,
    n_replications: int = 64,
    worker_counts=(1, 2, 4),
) -> dict:
    """Serial loop vs the supervised process pool, plus crash recovery.

    Two fan-out shapes from :mod:`repro.exec`, each at 1/2/4 workers:

    * **spec batches** — six overlapping Monte-Carlo budget-sweep specs
      through ``Session.run_many(executor=ProcessExecutor(workers=w))``
      vs the in-process serial loop (``specs_per_sec``);
    * **replication shards** — a Fig. 3-sized ``agent-batch`` ensemble
      split with :func:`repro.exec.sharded_run_replications` across the
      pool (``replications_per_sec``).

    The pooled batch report is asserted **byte-identical** to the
    serial one, and the sharded ensemble trajectory-identical to the
    sequential fan-out.  ``recovery_overhead_pct`` is the price of one
    injected worker kill (``worker.task`` fault on the first dispatch:
    crash, requeue, respawn) on the two-worker batch.  Parallel
    speedups here are bounded by worker spawn cost and per-worker cache
    warm-up — the section exists to keep the *scaling trajectory* and
    the recovery price honest, not to advertise a big multiplier.
    """
    from repro.api import BudgetSweepSpec, RunConfig, Session
    from repro.exec import ProcessExecutor, sharded_run_replications
    from repro.market.simulator import AgentSimulator, AtomicTaskOrder
    from repro.perf.engine import resolve_engine
    from repro.stats.rng import replication_seeds
    from repro.workloads.amt import amt_task_type, amt_worker_pool

    worker_counts = tuple(worker_counts)

    # -- spec-batch fan-out --------------------------------------------
    top = 1000 + 500 * 5
    grids = [
        tuple(range(1000 + 250 * (i % 3), top + 1, 500)) for i in range(6)
    ]
    specs = [
        BudgetSweepSpec(
            family="repe",
            case="a",
            n_tasks=n_tasks,
            budgets=grid,
            strategies=("ra", "re"),
            scoring="mc",
            n_samples=n_samples,
        )
        for grid in grids
    ]

    def run_specs(executor):
        return Session(RunConfig()).run_many(specs, executor=executor)

    serial_report = run_specs("serial")
    pooled_report = run_specs(ProcessExecutor(workers=2))
    if pooled_report.to_json() != serial_report.to_json():
        raise AssertionError(
            "process-pool batch report diverged from the serial executor"
        )
    t_serial = _time(lambda: run_specs("serial"), repeats=2)
    t_pool = {
        w: _time(lambda: run_specs(ProcessExecutor(workers=w)), repeats=2)
        for w in worker_counts
    }

    # -- recovery overhead: one injected worker kill -------------------
    kill_config = RunConfig(
        faults={"rules": [{"site": "worker.task", "at": [0]}]}
    )

    def run_with_kill():
        return Session(kill_config).run_many(
            specs, executor=ProcessExecutor(workers=2)
        )

    killed_report = run_with_kill()
    if not killed_report.ok or [
        o.result.payload for o in killed_report.outcomes
    ] != [o.result.payload for o in pooled_report.outcomes]:
        raise AssertionError(
            "crash-recovery batch diverged from the clean pooled batch"
        )
    t_killed = _time(run_with_kill, repeats=2)

    # -- replication-shard fan-out --------------------------------------
    orders = [
        AtomicTaskOrder(
            task_type=amt_task_type(votes=4), prices=(5,), atomic_task_id=i
        )
        for i in range(16)
    ]

    def fresh_sim():
        return AgentSimulator(amt_worker_pool(), seed=0, max_sim_time=1e9)

    def run_sequential():
        return resolve_engine("agent-batch").run_replications(
            fresh_sim(), orders, replication_seeds(0, n_replications),
            None, 0.0,
        )

    def run_sharded(w):
        return sharded_run_replications(
            fresh_sim(), orders, replication_seeds(0, n_replications),
            engine="agent-batch", shards=w,
            executor=ProcessExecutor(workers=w),
        )

    sequential = run_sequential()
    sharded = run_sharded(2)
    if [r.makespan for r in sharded] != [r.makespan for r in sequential] or [
        r.answers for r in sharded
    ] != [r.answers for r in sequential]:
        raise AssertionError(
            "sharded replication ensemble diverged from the sequential "
            "fan-out"
        )
    t_seq_reps = _time(run_sequential, repeats=2)
    t_shard = {
        w: _time(lambda: run_sharded(w), repeats=2) for w in worker_counts
    }

    widest = worker_counts[-1]
    return {
        "workload": f"{len(specs)} mc budget-sweep specs "
        f"({n_samples} samples, {n_tasks} tasks) + "
        f"{n_replications} agent-batch replications x {len(orders)} tasks",
        "cpu_count": os.cpu_count(),
        "serial_specs_per_sec": len(specs) / t_serial,
        "pool_specs_per_sec": {
            str(w): len(specs) / t for w, t in t_pool.items()
        },
        "sequential_replications_per_sec": n_replications / t_seq_reps,
        "sharded_replications_per_sec": {
            str(w): n_replications / t for w, t in t_shard.items()
        },
        "recovery_overhead_pct": (t_killed / t_pool[2] - 1.0) * 100.0,
        "speedup": t_serial / t_pool[widest],
        "outputs_identical": True,
        "note": "speedup = serial loop vs the widest pool on the spec "
        "batch; recovery_overhead_pct = one worker.task kill (crash + "
        "requeue + respawn) vs the clean 2-worker batch; on a host with "
        "cpu_count=1 the pool cannot beat serial, so speedup measures "
        "supervision overhead rather than parallel scaling",
    }


def bench_store_serving(
    n_tasks: int = 100, n_budgets: int = 9, n_specs: int = 100
) -> dict:
    """Cold compute vs warm memoized serving (``repro.store``).

    Two shapes against a throwaway on-disk :class:`ResultStore`:

    * **single spec** — a numeric Fig. 2-sized budget sweep through
      ``Session.run(store=...)``: the cold call computes and files the
      entry, the warm call is one verified disk read
      (verify-before-serve: checksum + validity envelope).  The served
      result is asserted to serialize byte-identically to the computed
      one, with the engine never executing (``runs_completed`` is the
      witness);
    * **hit-rate sweep** — ``n_specs`` single-budget sweeps through
      ``run_many(store=...)`` twice: the cold batch misses and
      computes everything, the re-submitted batch must come back 100%
      served (``warm_hit_rate``) with a byte-identical report.

    The store's integrity work (sha256 of the canonical result
    document + envelope comparison) happens on *every* warm serve, so
    ``speedup`` prices verification in — this is the memoized-serving
    number a result-caching service would actually see.
    """
    import shutil
    import tempfile

    from repro.api import BudgetSweepSpec, Session
    from repro.store import ResultStore

    root = pathlib.Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    try:
        store = ResultStore(root / "single")
        top = 1000 + 500 * max(int(n_budgets) - 1, 1)
        spec = BudgetSweepSpec(
            family="repe",
            case="a",
            n_tasks=n_tasks,
            budgets=tuple(range(1000, top + 1, 500)),
            strategies=("ra", "re"),
            scoring="numeric",
        )
        session = Session()
        computed = session.run(spec, store=store)
        runs_after_compute = session.runs_completed

        def warm():
            return session.run(spec, store=store)

        served = warm()
        if session.runs_completed != runs_after_compute:
            raise AssertionError("warm serve executed the engine")
        if served.to_dict() != computed.to_dict():
            raise AssertionError(
                "served document diverged from the computed one"
            )
        t_cold = _time(lambda: Session().run(spec), repeats=3)
        t_warm = _time(warm, repeats=5)

        sweep_store = ResultStore(root / "sweep")
        sweep = [
            BudgetSweepSpec(
                family="repe",
                case="a",
                n_tasks=n_tasks,
                budgets=(1000 + 50 * i,),
                strategies=("ra",),
                scoring="numeric",
            )
            for i in range(int(n_specs))
        ]
        t0 = time.perf_counter()
        cold_report = Session().run_many(sweep, store=sweep_store)
        t_sweep_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm_report = Session().run_many(sweep, store=sweep_store)
        t_sweep_warm = time.perf_counter() - t0
        if warm_report.store["hits"] != len(sweep):
            raise AssertionError(
                f"warm sweep should serve every spec, got "
                f"{warm_report.store}"
            )
        if warm_report.to_dict() != cold_report.to_dict():
            raise AssertionError(
                "warm sweep report diverged from the cold batch"
            )
        return {
            "workload": f"numeric budget sweep ({n_tasks} tasks, "
            f"{max(int(n_budgets), 1)} budgets) + {len(sweep)}-spec "
            "single-budget hit-rate sweep",
            "cold_seconds": t_cold,
            "warm_seconds": t_warm,
            "speedup": t_cold / t_warm,
            "sweep_specs": len(sweep),
            "sweep_cold_seconds": t_sweep_cold,
            "sweep_warm_seconds": t_sweep_warm,
            "sweep_speedup": t_sweep_cold / t_sweep_warm,
            "warm_hit_rate": warm_report.store["hits"] / len(sweep),
            "outputs_identical": True,
            "note": "cold = full compute, no store; warm = one "
            "verify-before-serve disk read (sha256 + envelope) per "
            "result; sweep numbers re-submit the same 100-spec batch "
            "against a warm store",
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def bench_service_latency(
    n_tasks: int = 100, n_specs: int = 18, n_allocates: int = 36
) -> dict:
    """Cold vs warm-store vs online serving through the live service.

    Drives a real :class:`repro.serve.ReproService` (asyncio streams
    on a background thread, store-backed, serial executor) through the
    three request shapes a deployment serves, reporting p50/p95/p99
    latency and sustained requests/sec for each:

    * **cold** — *n_specs* distinct single-budget numeric sweeps, each
      submitted, polled to completion, and fetched (submit → settled →
      result per request).  Every served document is asserted
      byte-identical to a direct ``Session.run`` of the same spec —
      the HTTP layer must not perturb results;
    * **warm_store** — a *fresh* service instance on the same store
      directory re-serves the identical submissions: every one must be
      a store hit (``served``), one verified disk read instead of a
      numeric sweep;
    * **online** — allocate requests priced by the DP kernels against
      the live ledger (the market path has no store to hide behind).

    The headline ``speedup`` is cold/warm total serving time — the
    memoization gain as seen *through the service*, verification and
    HTTP overhead priced in.
    """
    import asyncio
    import shutil
    import tempfile

    from repro.api import BudgetSweepSpec, RunConfig, Session
    from repro.serve import ReproService, http_request, start_in_thread

    specs = [
        BudgetSweepSpec(
            family="repe",
            case="a",
            n_tasks=n_tasks,
            budgets=(1000 + 50 * i,),
            strategies=("ra",),
            scoring="numeric",
        )
        for i in range(int(n_specs))
    ]
    scenarios = ("homo", "repe", "heter")

    async def settle(host, port, spec_doc):
        t0 = time.perf_counter()
        status, body = await http_request(
            host, port, "POST", "/runs", {"spec": spec_doc}
        )
        if status not in (200, 202):
            raise AssertionError(f"submit failed: {status} {body}")
        run_id = body["run_id"]
        served = bool(body.get("served"))
        while body.get("status") in ("queued", "running"):
            await asyncio.sleep(0.002)
            status, body = await http_request(
                host, port, "GET", f"/runs/{run_id}"
            )
        status, result = await http_request(
            host, port, "GET", f"/runs/{run_id}/result"
        )
        if status != 200:
            raise AssertionError(f"result failed: {status} {result}")
        return (time.perf_counter() - t0) * 1000.0, result, served

    async def drive(host, port):
        latencies, results, served_flags = [], [], []
        for spec in specs:
            ms, doc, served = await settle(host, port, spec.to_dict())
            latencies.append(ms)
            results.append(doc)
            served_flags.append(served)
        return latencies, results, served_flags

    async def drive_market(host, port):
        latencies = []
        for i in range(int(n_allocates)):
            t0 = time.perf_counter()
            status, body = await http_request(
                host, port, "POST", "/market/allocate",
                {
                    "scenario": scenarios[i % len(scenarios)],
                    "n_tasks": 4,
                    "budget": 600,
                },
            )
            if status != 200:
                raise AssertionError(f"allocate failed: {status} {body}")
            latencies.append((time.perf_counter() - t0) * 1000.0)
        return latencies

    def shape(latencies):
        arr = np.sort(np.asarray(latencies, dtype=float))
        total = arr.sum() / 1000.0
        return {
            "p50_ms": float(np.percentile(arr, 50)),
            "p95_ms": float(np.percentile(arr, 95)),
            "p99_ms": float(np.percentile(arr, 99)),
            "requests_per_sec": len(arr) / total,
        }, total

    root = pathlib.Path(tempfile.mkdtemp(prefix="repro-bench-serve-"))
    try:
        cold_service = ReproService(store=root / "store")
        with start_in_thread(cold_service) as handle:
            cold_ms, cold_docs, _ = asyncio.run(
                drive(handle.host, handle.port)
            )
            online_ms = asyncio.run(drive_market(handle.host, handle.port))

        direct = [Session(RunConfig()).run(spec).to_dict() for spec in specs]
        for served_doc, direct_doc in zip(cold_docs, direct):
            if json.dumps(served_doc, sort_keys=True) != json.dumps(
                direct_doc, sort_keys=True
            ):
                raise AssertionError(
                    "service result diverged from direct Session.run"
                )

        warm_service = ReproService(store=root / "store")  # fresh instance
        with start_in_thread(warm_service) as handle:
            warm_ms, warm_docs, served_flags = asyncio.run(
                drive(handle.host, handle.port)
            )
        if not all(served_flags):
            raise AssertionError(
                f"warm pass missed the store: {served_flags.count(False)} "
                "submissions recomputed"
            )
        if warm_docs != cold_docs:
            raise AssertionError("warm-store documents diverged from cold")

        cold_shape, cold_total = shape(cold_ms)
        warm_shape, warm_total = shape(warm_ms)
        online_shape, _ = shape(online_ms)
        return {
            "workload": f"{len(specs)} single-budget numeric sweeps "
            f"({n_tasks} tasks) + {int(n_allocates)} market allocations, "
            "served over HTTP",
            "cold": cold_shape,
            "warm_store": warm_shape,
            "online": online_shape,
            "cold_seconds": cold_total,
            "warm_seconds": warm_total,
            "speedup": cold_total / warm_total,
            "outputs_identical": True,
            "note": "cold = submit+poll+result against an empty store; "
            "warm_store = a fresh service instance re-serving the same "
            "submissions from disk (every one asserted a store hit); "
            "online = DP-priced market allocations; speedup = cold/warm "
            "total serving time through the real socket path",
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


#: Section name -> (bench callable, arguments it takes from run()).
_SECTIONS = {
    "mc_job_sampling": lambda p: bench_mc_sampling(
        p["n_samples"], p["n_tasks"]
    ),
    "allocation_sampling": lambda p: bench_allocation_sampling(
        p["n_samples"], p["n_tasks"]
    ),
    "budget_indexed_dp_sweep": lambda p: bench_dp_sweep(
        p["n_tasks"], p["n_budgets"]
    ),
    "one_pass_strategy_sweep": lambda p: bench_one_pass_sweep(
        p["n_tasks"], p["n_budgets"]
    ),
    "chunked_batch_sampling": lambda p: bench_chunked_sampling(
        p["n_samples"], p["n_tasks"]
    ),
    "deadline_frontier": lambda p: bench_deadline_frontier(
        p["n_tasks"], p["n_deadlines"]
    ),
    "agent_market_replications": lambda p: bench_agent_market_replications(
        p["n_replications"]
    ),
    "session_run_many": lambda p: bench_session_run_many(
        p["n_tasks"], p["n_budgets"]
    ),
    "session_resilience": lambda p: bench_session_resilience(
        p["n_samples"], p["n_tasks"], p["n_budgets"]
    ),
    "executor_scaling": lambda p: bench_executor_scaling(
        p["n_samples"], p["n_tasks"], p["n_replications"]
    ),
    "store_serving": lambda p: bench_store_serving(
        p["n_tasks"], p["n_budgets"]
    ),
    "service_latency": lambda p: bench_service_latency(
        p["n_tasks"], 2 * p["n_budgets"], 4 * p["n_budgets"]
    ),
}


def run(
    n_samples: int = 1000,
    n_tasks: int = 100,
    n_budgets: int = 9,
    n_deadlines: int = 20,
    n_replications: int = 64,
    write: bool = True,
    sections=None,
) -> dict:
    params = {
        "n_samples": n_samples,
        "n_tasks": n_tasks,
        "n_budgets": n_budgets,
        "n_deadlines": n_deadlines,
        "n_replications": n_replications,
    }
    if sections is None:
        sections = list(_SECTIONS)
    unknown = [s for s in sections if s not in _SECTIONS]
    if unknown:
        raise SystemExit(
            f"unknown bench sections {unknown}; known: {sorted(_SECTIONS)}"
        )
    results = {name: _SECTIONS[name](params) for name in sections}
    if write:
        # A filtered run refreshes only its sections: merge over the
        # committed file so `--sections x` never drops the others.
        payload = results
        if len(results) < len(_SECTIONS) and RESULT_PATH.exists():
            payload = json.loads(RESULT_PATH.read_text())
            payload.update(results)
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return results


#: ``--check`` tolerance: a section fails only when its fresh speedup
#: drops below committed/DRIFT_FACTOR (and below the absolute floor of
#: 1.0 it is merely reported) — generous on purpose, CI runners are
#: noisy and quick mode runs reduced sizes.
DRIFT_FACTOR = 10.0

#: Identity keys a check run must see preserved, per section.
_IDENTITY_KEYS = ("bit_identical", "outputs_identical")


def check(results: dict, committed_path: pathlib.Path) -> list[str]:
    """Compare a fresh run against the committed benchmark JSON.

    Returns a list of human-readable failures (empty = healthy).  The
    run itself already asserts every bit/output-identity contract; the
    drift check adds (a) the identity flags must still be recorded
    true and (b) no section's speedup may collapse by more than
    :data:`DRIFT_FACTOR` versus the committed number while also
    dropping below 1× (slower than the seed path it replaced).
    """
    committed = json.loads(committed_path.read_text())
    failures: list[str] = []
    for name, fresh in results.items():
        base = committed.get(name)
        if base is None:
            continue  # new section, nothing committed to drift from
        for key in _IDENTITY_KEYS:
            if base.get(key, False) and not fresh.get(key, False):
                failures.append(f"{name}: lost {key}")
        required = base["speedup"] / DRIFT_FACTOR
        if fresh["speedup"] < required and fresh["speedup"] < 1.0:
            failures.append(
                f"{name}: speedup {fresh['speedup']:.2f}x fell below "
                f"{required:.2f}x (committed {base['speedup']:.2f}x / "
                f"drift factor {DRIFT_FACTOR:g})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the repro.perf fast paths vs the seed code."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced sizes, no JSON write (the CI bench-drift mode)",
    )
    parser.add_argument(
        "--check",
        type=pathlib.Path,
        metavar="JSON",
        help="compare against a committed benchmark JSON and exit "
        "non-zero on large regressions",
    )
    parser.add_argument(
        "--sections",
        nargs="+",
        metavar="NAME",
        choices=sorted(_SECTIONS),
        help="run only these sections (choices: %(choices)s); a "
        "filtered full run merges its sections over the committed "
        "JSON instead of rewriting it",
    )
    args = parser.parse_args(argv)
    if args.quick:
        results = run(
            n_samples=300,
            n_tasks=50,
            n_budgets=6,
            n_deadlines=10,
            n_replications=16,
            write=False,
            sections=args.sections,
        )
    else:
        results = run(sections=args.sections)
    print(json.dumps(results, indent=2))
    if not args.quick:
        print(f"\nwrote {RESULT_PATH}")
    summary = "; ".join(
        f"{name}: {section['speedup']:.1f}x"
        for name, section in results.items()
        if "speedup" in section
    )
    print(summary)
    if args.check is not None:
        failures = check(results, args.check)
        if failures:
            print("\nbench drift check FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\nbench drift check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
