"""Ablation A4 — sensitivity of tuned latency to calibration error.

A practitioner never knows the true λ_o(c); §3.3's probes estimate it
with noise.  This ablation tunes with *deliberately miscalibrated*
curves (slope scaled by 0.25x–4x) and scores every allocation against
the TRUE market, answering: how much latency does a k-fold calibration
error actually cost?

Expected shape: a flat valley around the truth — the tuner is robust
to moderate (≤2x) error because (a) proportional misestimates do not
change EA/RA's allocation at all, and (b) the latency objective is
flat near its optimum.  The bench records the penalty curve.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import HTuningProblem, TaskSpec, Tuner
from repro.core import expected_job_latency
from repro.experiments import format_table
from repro.market import LinearPricing

TRUE_CURVE = LinearPricing(2.0, 1.0)
SCALES = (0.25, 0.5, 1.0, 2.0, 4.0)
#: slope *and* intercept distortions probe shape errors, not just
#: proportional ones (which provably cannot change the allocation).
SHAPES = (
    ("truth", LinearPricing(2.0, 1.0)),
    ("flat-belief", LinearPricing(0.1, 8.0)),
    ("steep-belief", LinearPricing(8.0, 0.1)),
)


def _tuned_latency_under_truth(believed: LinearPricing) -> float:
    # Two repetition groups so the allocation actually depends on the
    # believed curve (Scenario II).
    def build(pricing):
        tasks = [
            TaskSpec(i, 2, pricing, 2.0, type_name="x") for i in range(10)
        ] + [
            TaskSpec(10 + i, 5, pricing, 2.0, type_name="x")
            for i in range(10)
        ]
        return HTuningProblem(tasks, budget=700)

    allocation = Tuner(seed=0).tune(build(believed))
    truth_problem = build(TRUE_CURVE)
    return expected_job_latency(truth_problem, allocation)


def test_sensitivity_to_shape_errors(benchmark, report):
    oracle = _tuned_latency_under_truth(TRUE_CURVE)
    rows = []
    worst_penalty = 0.0
    for name, believed in SHAPES:
        latency = _tuned_latency_under_truth(believed)
        penalty = latency / oracle - 1.0
        worst_penalty = max(worst_penalty, penalty)
        rows.append((name, latency, f"{penalty:+.2%}"))
    report(
        "ablation_sensitivity_shape",
        format_table(
            ["believed curve", "latency under truth", "penalty vs oracle"],
            rows,
            title="Ablation A4a — tuning with a wrong curve *shape*",
        ),
    )
    # Even grossly wrong shapes stay within a bounded penalty: the
    # allocation lattice is coarse and the objective flat.
    assert worst_penalty < 0.2

    benchmark(lambda: _tuned_latency_under_truth(SHAPES[1][1]))


def test_sensitivity_to_proportional_errors(report):
    oracle = _tuned_latency_under_truth(TRUE_CURVE)
    rows = []
    for scale in SCALES:
        believed = LinearPricing(
            TRUE_CURVE.slope * scale, TRUE_CURVE.intercept * scale
        )
        latency = _tuned_latency_under_truth(believed)
        rows.append((f"{scale:g}x", latency, f"{latency / oracle - 1:+.3%}"))
    report(
        "ablation_sensitivity_scale",
        format_table(
            ["scale error", "latency under truth", "penalty"],
            rows,
            title="Ablation A4b — proportional miscalibration "
            "(provably allocation-neutral)",
        ),
    )
    # Proportional scaling cannot change the DP's argmin: zero penalty.
    for _scale, latency, _pen in rows:
        assert latency == pytest.approx(oracle, rel=1e-9)
