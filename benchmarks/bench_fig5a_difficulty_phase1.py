"""Fig. 5(a) — difficulty vs Phase-1 (on-hold) latency.

Dot-filter tasks with 4/6/8 internal votes at rewards $0.05 and $0.08:
harder tasks attract workers more slowly, so the mean acceptance
latency must increase with the vote count at both rewards, and the
higher reward must be faster at every difficulty.
"""

from __future__ import annotations

from repro.experiments import fig5ab_experiment, format_table


def test_fig5a_difficulty_vs_phase1(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig5ab_experiment(
            vote_counts=(4, 6, 8), prices=(5, 8), repetitions=10,
            n_tasks=60, seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for votes in result.vote_counts:
        for price in result.prices:
            rows.append(
                (
                    f"{votes}v",
                    f"${price / 100:.2f}",
                    result.mean_phase1[(votes, price)] / 60.0,
                )
            )
    report(
        "fig5a_difficulty_phase1",
        format_table(
            ["difficulty", "reward", "mean phase-1 latency/min"],
            rows,
            title="Fig 5(a) — harder tasks are accepted more slowly",
        ),
    )
    for price in result.prices:
        assert result.phase1_increases_with_difficulty(price)
    # Higher reward is faster at every difficulty level.
    for votes in result.vote_counts:
        assert (
            result.mean_phase1[(votes, 8)] < result.mean_phase1[(votes, 5)]
        )
